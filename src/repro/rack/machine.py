"""The rack machine: the facade every layer above talks to.

A :class:`RackMachine` owns the nodes, the global memory, the fabric, the
fault injector, and the latency accounting.  All software in this
repository — FlacDK, the FlacOS kernel, the applications — touches rack
memory exclusively through this class (usually via a bound
:class:`NodeContext`), so the substrate's incoherence and latency rules
apply uniformly.

Hardware contract reproduced from the paper (§2.1):

* plain loads/stores go through the issuing node's private cache and are
  **not** coherent across nodes;
* atomic instructions bypass caches and are serialised rack-wide (the
  libfam-atomic model), working on global memory and the node's own
  local memory;
* cache maintenance (flush / invalidate / write-back-invalidate) is
  explicit and per-address-range.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from .cache import NodeCache
from .faults import FaultInjector
from .interconnect import Interconnect, node_vertex
from .memory import (
    AddressMap,
    MemoryKind,
    MemoryError_,
    PhysicalMemory,
    ProtectionError,
    Region,
    UncorrectableMemoryError,
    build_address_map,
)
from .node import Node
from .params import GLOBAL_BASE, LOCAL_STRIDE, RackConfig
from . import topology as topo
from ..telemetry import TELEMETRY as _TEL


_INT_FMT = {1: "<B", 2: "<H", 4: "<I", 8: "<Q"}
_INT_DTYPE = {1: "<u1", 2: "<u2", 4: "<u4", 8: "<u8"}

#: Telemetry subsystem for the data plane (metric naming convention:
#: DESIGN.md §8).  Cache hit/miss accounting is routed through these
#: counters *symmetrically* — fast-path hits and general-path hits and
#: misses all land here — while ``NodeCache.stats`` stays as the
#: compatibility view tests and benches already read.
_SUB = "rack.machine"


class RackMachine:
    """A simulated memory-interconnected rack."""

    def __init__(self, config: Optional[RackConfig] = None) -> None:
        self.config = config or RackConfig()
        cfg = self.config
        gmem_kind = MemoryKind.PMEM if cfg.global_kind == "pmem" else MemoryKind.GLOBAL
        self.global_mem = PhysicalMemory(cfg.global_mem_size, gmem_kind, "gmem")
        self.nodes: Dict[int, Node] = {}
        local_devices: Dict[int, PhysicalMemory] = {}
        for node_id in range(cfg.n_nodes):
            dev = PhysicalMemory(cfg.local_mem_size, MemoryKind.LOCAL_DRAM, f"local{node_id}")
            local_devices[node_id] = dev
            cache = NodeCache(
                cfg.cache_lines,
                cfg.cache_line_size,
                read_backing=self._make_backing_reader(node_id),
                write_backing=self._make_backing_writer(node_id),
            )
            self.nodes[node_id] = Node(node_id, cfg.cores_per_node, dev, cache)
        self.address_map: AddressMap = build_address_map(local_devices, self.global_mem)
        self.fabric: Interconnect = topo.build(cfg.topology, cfg.n_nodes)
        self.faults = FaultInjector(cfg.faults, seed=cfg.seed)
        self.latency = cfg.latency
        self.line_size = cfg.cache_line_size
        # -- data-plane fast path state (see DESIGN.md) --------------------
        # Hoisted constants: the line mask and hit charge never change for
        # a built machine (LatencyModel is fixed at construction).
        self._line_mask = cfg.cache_line_size - 1
        self._hit_ns = cfg.latency.cache_hit_ns
        # Software TLB: per-node memo of the last region resolved, dropped
        # when the address map's generation moves.
        self._tlb: Dict[int, Tuple[int, int, Region]] = {}
        self._tlb_gen = self.address_map.generation
        # Charge table: (first_line_ns, rest_line_ns) per (node, region),
        # dropped when the fabric's generation moves (link/topology change).
        self._charge_memo: Dict[Tuple[int, int], Tuple[float, float]] = {}
        self._charge_gen = self.fabric.generation
        # -- self-healing hook (see flacdk.reliability.repair) --------------
        # When set, a poisoned access invokes the handler instead of raising
        # immediately; the access retries (bounded, with backoff) after a
        # claimed repair.  The reentrancy guard keeps the handler's own
        # memory traffic from recursing into another repair.
        self._repair_handler: Optional[Callable[[int, int], bool]] = None
        self._in_repair = False
        self.repair_max_retries = 3
        self.repair_backoff_ns = 500.0
        # -- crash hooks (flight recorder et al.) ---------------------------
        # Called as hook(node_id, now_ns) *after* the node is dead and the
        # crash is in the fault log, so observers see the final state.
        self._crash_hooks: List[Callable[[int, float], None]] = []

    # -- address helpers -------------------------------------------------------

    @property
    def global_base(self) -> int:
        return GLOBAL_BASE

    @property
    def global_size(self) -> int:
        return self.global_mem.size

    def local_base(self, node_id: int) -> int:
        self._node(node_id)
        return node_id * LOCAL_STRIDE

    def local_size(self, node_id: int) -> int:
        return self._node(node_id).local_mem.size

    def is_global_addr(self, addr: int) -> bool:
        return addr >= GLOBAL_BASE

    def context(self, node_id: int) -> "NodeContext":
        """A view of the machine bound to one node (the common handle)."""
        self._node(node_id)
        return NodeContext(self, node_id)

    # -- time -------------------------------------------------------------------

    def now(self, node_id: int) -> float:
        return self._node(node_id).clock.now_ns

    def advance(self, node_id: int, ns: float) -> float:
        """Charge computation time unrelated to memory (software overhead)."""
        return self._node(node_id).clock.advance(ns)

    def max_time(self) -> float:
        return max(n.clock.now_ns for n in self.nodes.values())

    # -- data path ----------------------------------------------------------------

    def load(self, node_id: int, addr: int, size: int, *, bypass_cache: bool = False) -> bytes:
        """Read ``size`` bytes at physical ``addr`` through the node's cache."""
        if not bypass_cache and 0 < size:
            # fast path: single-line cache hit.  A resident line proves the
            # address resolved and passed protection when it was filled, so
            # no resolve, no fault roll, and a hits-only charge — identical
            # observables to the general path, an order less Python.
            node = self.nodes.get(node_id)
            if node is not None and node.alive:
                mask = self._line_mask
                base = addr & ~mask
                if addr + size <= base + mask + 1:
                    cache = node.cache
                    lines = cache._lines
                    line = lines.get(base)
                    if line is not None:
                        lines.move_to_end(base)
                        cache.stats.hits += 1
                        if _TEL.enabled:
                            _TEL.count(node_id, _SUB, "cache.hit")
                        if _TEL.atlas is not None:
                            _TEL.atlas.touch(addr, size)
                        # == _charge_cached(node, region, hits=1, misses=0)
                        node.clock._now_ns += self._hit_ns
                        lo = addr - base
                        return bytes(line.data[lo : lo + size])
        node, region, offset = self._access(node_id, addr, size)
        if _TEL.atlas is not None:
            _TEL.atlas.touch(addr, size)
        if bypass_cache:
            self._charge_bulk(node, region, size, write=False)
            self._maybe_fault(region, offset, size, node_id)
            self._check_poison(region, offset, size, node_id)
            if _TEL.enabled:
                _TEL.count(node_id, _SUB, "bypass.load")
            return region.device.read(offset, size)
        data, hits, misses = node.cache.load(addr, size)
        self._charge_cached(node, region, hits, misses)
        return data

    def store(
        self, node_id: int, addr: int, data: bytes, *, bypass_cache: bool = False
    ) -> None:
        """Write ``data`` at physical ``addr``.

        Cached stores dirty the node's cache and reach backing memory only
        on flush/eviction; ``bypass_cache`` models non-temporal stores
        that go straight to the device (still leaving any stale cached
        copy in place — callers must invalidate if they mix modes).
        """
        size = len(data)
        if not bypass_cache and 0 < size:
            # fast path: single-line cache hit (see load)
            node = self.nodes.get(node_id)
            if node is not None and node.alive:
                mask = self._line_mask
                base = addr & ~mask
                if addr + size <= base + mask + 1:
                    cache = node.cache
                    lines = cache._lines
                    line = lines.get(base)
                    if line is not None:
                        lines.move_to_end(base)
                        lo = addr - base
                        line.data[lo : lo + size] = data
                        line.dirty = True
                        cache.stats.hits += 1
                        if _TEL.enabled:
                            _TEL.count(node_id, _SUB, "cache.hit")
                        if _TEL.atlas is not None:
                            _TEL.atlas.touch(addr, size)
                        # == _charge_cached(node, region, hits=1, misses=0)
                        node.clock._now_ns += self._hit_ns
                        return
        node, region, offset = self._access(node_id, addr, size)
        if _TEL.atlas is not None:
            _TEL.atlas.touch(addr, size)
        if bypass_cache:
            self._charge_bulk(node, region, len(data), write=True)
            self._maybe_fault(region, offset, len(data), node_id)
            region.device.clear_poison(offset, len(data))
            region.device.write(offset, data)
            if _TEL.enabled:
                _TEL.count(node_id, _SUB, "bypass.store")
            return
        hits, misses, allocs = node.cache.store(addr, data)
        # full-line allocations never fetch: charged like hits
        self._charge_cached(node, region, hits + allocs, misses)

    # -- atomics ---------------------------------------------------------------------

    def atomic_cas(
        self, node_id: int, addr: int, expected: int, new: int, width: int = 8
    ) -> Tuple[bool, int]:
        """Compare-and-swap directly on backing memory.

        Returns ``(swapped, observed_value)``.  The issuing node's cached
        copy of the line is invalidated so subsequent cached loads observe
        the device value.
        """
        node, region, offset, fmt = self._atomic_prologue(node_id, addr, width)
        current = struct.unpack(fmt, region.device.read(offset, width))[0]
        swapped = current == expected
        if swapped:
            region.device.write(offset, struct.pack(fmt, new & _mask(width)))
        return swapped, current

    def atomic_fetch_add(self, node_id: int, addr: int, delta: int, width: int = 8) -> int:
        """Atomically add ``delta`` (wrapping); returns the *old* value."""
        node, region, offset, fmt = self._atomic_prologue(node_id, addr, width)
        current = struct.unpack(fmt, region.device.read(offset, width))[0]
        region.device.write(offset, struct.pack(fmt, (current + delta) & _mask(width)))
        return current

    def atomic_swap(self, node_id: int, addr: int, new: int, width: int = 8) -> int:
        """Atomically exchange; returns the old value."""
        node, region, offset, fmt = self._atomic_prologue(node_id, addr, width)
        current = struct.unpack(fmt, region.device.read(offset, width))[0]
        region.device.write(offset, struct.pack(fmt, new & _mask(width)))
        return current

    def atomic_load(self, node_id: int, addr: int, width: int = 8) -> int:
        """Coherent (cache-bypassing) integer load."""
        node, region, offset, fmt = self._atomic_prologue(node_id, addr, width)
        return struct.unpack(fmt, region.device.read(offset, width))[0]

    def atomic_store(self, node_id: int, addr: int, value: int, width: int = 8) -> None:
        """Coherent (cache-bypassing) integer store."""
        node, region, offset, fmt = self._atomic_prologue(node_id, addr, width)
        region.device.write(offset, struct.pack(fmt, value & _mask(width)))

    # -- bulk data plane (DESIGN.md §10) -----------------------------------------------
    #
    # The bulk APIs are *semantically* a loop of single ops: returned
    # bytes, charged simulated ns, cache state, fault-log contents, and
    # telemetry counters are bit-identical to issuing each access alone.
    # What they amortise is host CPU: one resolve per distinct region,
    # one coalesced fault/poison pass per region, vectorized charge
    # arithmetic (``np.add.accumulate`` is a strict left fold, so the
    # float rounding matches the sequential clock adds), and one
    # aggregated telemetry record per batch.  Whenever a batch needs the
    # sequential machinery to stay exact — fault injection armed for a
    # touched region kind, poison in a touched window, overlapping
    # writes, unmapped or misaligned addresses — it falls back to the
    # single-op loop, which reproduces every observable including the
    # op index at which an error surfaces.

    def load_many(
        self,
        node_id: int,
        addrs: Sequence[int],
        size: int,
        *,
        bypass_cache: bool = False,
        concat: bool = False,
    ) -> Union[List[bytes], bytes]:
        """Read ``size`` bytes at each address (scatter-gather read).

        Returns one ``bytes`` per address, or a single packed buffer
        when ``concat`` is true.  Equivalent to a loop of :meth:`load`.
        """
        n = len(addrs)
        if n == 0:
            return b"" if concat else []
        node = self._node(node_id)
        node.check_alive()
        if bypass_cache:
            buf = self._bulk_bypass_load(node, addrs, size)
            if buf is not None:
                return buf if concat else _split(buf, size)
            parts = [self.load(node_id, a, size, bypass_cache=True) for a in addrs]
        else:
            parts = self._bulk_cached_load(node, addrs, size)
        return b"".join(parts) if concat else parts

    def store_many(
        self,
        node_id: int,
        addrs: Sequence[int],
        data: Union[Sequence[bytes], bytes],
        *,
        bypass_cache: bool = False,
        size: Optional[int] = None,
    ) -> None:
        """Write ``data[i]`` at ``addrs[i]`` (scatter write).

        ``data`` is one payload per address, or — when ``size`` is given
        — a single packed buffer of ``len(addrs) * size`` bytes (the
        write-side twin of ``load_many(..., concat=True)``; skips all
        per-payload bookkeeping).  Equivalent to a loop of :meth:`store`;
        per-payload batches need not share one size, though only
        uniform-size bypass batches vectorize.
        """
        n = len(addrs)
        if size is not None:
            if size <= 0:
                raise ValueError("packed store_many needs a positive size")
            if len(data) != n * size:
                raise ValueError(
                    f"store_many got {n} addresses but a packed buffer of "
                    f"{len(data)} bytes (need {n * size})"
                )
            if n == 0:
                return
            node = self._node(node_id)
            node.check_alive()
            if bypass_cache and self._bulk_bypass_store_packed(node, addrs, data, size):
                return
            data = _split(bytes(data), size)
        else:
            if len(data) != n:
                raise ValueError(f"store_many got {n} addresses but {len(data)} payloads")
            if n == 0:
                return
            node = self._node(node_id)
            node.check_alive()
            if bypass_cache and self._bulk_bypass_store(node, addrs, data):
                return
        if bypass_cache:
            for a, d in zip(addrs, data):
                self.store(node_id, a, d, bypass_cache=True)
            return
        self._bulk_cached_store(node, addrs, data)

    def copy(
        self, node_id: int, dst: int, src: int, size: int, *, bypass_cache: bool = False
    ) -> None:
        """Copy ``size`` bytes from ``src`` to ``dst`` through the node.

        Semantically ``store(dst, load(src, size))``; the bypass form
        moves the bytes device-to-device as one slab slice instead of
        materialising them in Python.
        """
        if size <= 0:
            return
        if not bypass_cache:
            self.store(node_id, dst, self.load(node_id, src, size))
            return
        node, sregion, soff = self._access(node_id, src, size)
        self._charge_bulk(node, sregion, size, write=False)
        self._maybe_fault(sregion, soff, size, node_id)
        self._check_poison(sregion, soff, size, node_id)
        node, dregion, doff = self._access(node_id, dst, size)
        self._charge_bulk(node, dregion, size, write=True)
        self._maybe_fault(dregion, doff, size, node_id)
        dregion.device.clear_poison(doff, size)
        dregion.device.copy_from(doff, sregion.device, soff, size)
        if _TEL.enabled:
            _TEL.count(node_id, _SUB, "bypass.load")
            _TEL.count(node_id, _SUB, "bypass.store")
        if _TEL.atlas is not None:
            _TEL.atlas.touch(src, size)
            _TEL.atlas.touch(dst, size)

    def fill(
        self, node_id: int, addr: int, size: int, value: int, *, bypass_cache: bool = False
    ) -> None:
        """Set ``size`` bytes at ``addr`` to ``value`` (memset).

        Semantically ``store(addr, bytes([value]) * size)``; the bypass
        form broadcasts into the device slab without building a payload.
        """
        if size <= 0:
            return
        if not bypass_cache:
            self.store(node_id, addr, bytes([value & 0xFF]) * size)
            return
        node, region, offset = self._access(node_id, addr, size)
        self._charge_bulk(node, region, size, write=True)
        self._maybe_fault(region, offset, size, node_id)
        region.device.clear_poison(offset, size)
        region.device.fill(offset, size, value & 0xFF)
        if _TEL.enabled:
            _TEL.count(node_id, _SUB, "bypass.store")
        if _TEL.atlas is not None:
            _TEL.atlas.touch(addr, size)

    def atomic_fetch_add_many(
        self,
        node_id: int,
        addrs: Sequence[int],
        deltas: Union[int, Sequence[int]] = 1,
        width: int = 8,
    ) -> List[int]:
        """Batched :meth:`atomic_fetch_add`; returns the old values.

        ``deltas`` may be one int (broadcast) or a parallel sequence.
        Batches with duplicate addresses chain read-modify-writes, so
        they take the sequential path; unique-address batches vectorize.
        """
        n = len(addrs)
        if n == 0:
            return []
        if isinstance(deltas, int):
            delta_seq: Sequence[int] = [deltas] * n
        else:
            delta_seq = deltas
            if len(delta_seq) != n:
                raise ValueError(f"{n} addresses but {len(delta_seq)} deltas")
        plan = self._bulk_atomic_plan(node_id, addrs, width)
        if plan is not None:
            try:
                # int64 wrap-around then uintN truncation == ``& _mask(width)``
                d_arr = np.asarray(delta_seq, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                plan = None
        if plan is None:
            return [
                self.atomic_fetch_add(node_id, a, d, width)
                for a, d in zip(addrs, delta_seq)
            ]
        node, groups = plan
        dtype = np.dtype(_INT_DTYPE[width])
        old = np.empty(n, dtype=dtype)
        d_arr = d_arr.astype(dtype)
        for region, idx, offs in groups:
            rows = region.device.gather(offs, width)
            vals = rows.view(dtype).ravel()
            old[idx] = vals
            new = vals + d_arr[idx]
            region.device.scatter(offs, new.reshape(-1, 1).view(np.uint8))
        self._bulk_atomic_epilogue(node, addrs, groups, width)
        return old.tolist()

    def atomic_load_many(
        self, node_id: int, addrs: Sequence[int], width: int = 8
    ) -> List[int]:
        """Batched :meth:`atomic_load` (coherent scatter-gather read).

        The read-only member of the bulk atomics family: one plan, one
        gather per region, charges accumulated in op order — identical
        observables to a loop of single ``atomic_load`` calls.  Batches
        the plan rejects (duplicates, cached lines, armed faults, ...)
        fall back to that loop.
        """
        n = len(addrs)
        if n == 0:
            return []
        plan = self._bulk_atomic_plan(node_id, addrs, width)
        if plan is None:
            return [self.atomic_load(node_id, a, width) for a in addrs]
        node, groups = plan
        dtype = np.dtype(_INT_DTYPE[width])
        out = np.empty(n, dtype=dtype)
        for region, idx, offs in groups:
            rows = region.device.gather(offs, width)
            out[idx] = rows.view(dtype).ravel()
        self._bulk_atomic_epilogue(node, addrs, groups, width)
        return out.tolist()

    def atomic_cas_many(
        self,
        node_id: int,
        addrs: Sequence[int],
        expected: Sequence[int],
        new: Sequence[int],
        width: int = 8,
    ) -> List[Tuple[bool, int]]:
        """Batched :meth:`atomic_cas`; returns ``(swapped, observed)`` pairs."""
        n = len(addrs)
        if len(expected) != n or len(new) != n:
            raise ValueError("atomic_cas_many needs parallel addrs/expected/new")
        if n == 0:
            return []
        plan = self._bulk_atomic_plan(node_id, addrs, width)
        if plan is not None:
            try:
                e_raw = np.asarray(expected, dtype=np.int64)
                v_arr = np.asarray(new, dtype=np.int64)
            except (TypeError, ValueError, OverflowError):
                plan = None
        if plan is None:
            return [
                self.atomic_cas(node_id, a, e, v, width)
                for a, e, v in zip(addrs, expected, new)
            ]
        node, groups = plan
        dtype = np.dtype(_INT_DTYPE[width])
        old = np.empty(n, dtype=dtype)
        swapped = np.empty(n, dtype=bool)
        # the single op compares ``expected`` *unmasked* — an expected
        # value outside [0, 2^bits) can never match the device value —
        # so range-check before comparing in the truncated domain
        in_range = e_raw >= 0
        if width < 8:
            in_range &= e_raw <= _mask(width)
        e_arr = e_raw.astype(dtype)
        v_arr = v_arr.astype(dtype)  # truncation == ``new & _mask(width)``
        for region, idx, offs in groups:
            rows = region.device.gather(offs, width)
            vals = rows.view(dtype).ravel()
            old[idx] = vals
            hit = in_range[idx] & (vals == e_arr[idx])
            swapped[idx] = hit
            result = np.where(hit, v_arr[idx], vals)
            region.device.scatter(offs, result.reshape(-1, 1).view(np.uint8))
        self._bulk_atomic_epilogue(node, addrs, groups, width)
        return list(zip(swapped.tolist(), old.tolist()))

    # -- cache maintenance -------------------------------------------------------------

    def flush(self, node_id: int, addr: int, size: int) -> int:
        """Write back dirty lines (``dc cvac``); returns lines written."""
        node, region, _ = self._access(node_id, addr, size)
        written = node.cache.flush(addr, size)
        if written:
            self._charge_writeback(node, region, written)
        return written

    def invalidate(self, node_id: int, addr: int, size: int) -> int:
        """Drop cached lines without write-back (``dc ivac``)."""
        node = self._node(node_id)
        node.check_alive()
        dropped = node.cache.invalidate(addr, size)
        node.clock.advance(dropped * self.latency.invalidate_line_ns)
        return dropped

    def flush_invalidate(self, node_id: int, addr: int, size: int) -> Tuple[int, int]:
        """Write back then drop (``dc civac``)."""
        node, region, _ = self._access(node_id, addr, size)
        written, dropped = node.cache.flush_invalidate(addr, size)
        if written:
            self._charge_writeback(node, region, written)
        node.clock.advance(dropped * self.latency.invalidate_line_ns)
        return written, dropped

    def flush_all(self, node_id: int) -> int:
        """Write back every dirty line in the node's cache (context-switch
        and migration path).  Charged as a global-memory write burst —
        conservative when some victims are local."""
        node = self._node(node_id)
        node.check_alive()
        written = node.cache.flush_all()
        if written:
            lat = self.latency
            cost = self.fabric.path_to_gmem(node_id)
            first = lat.device_ns(is_global=True, hops=cost.hops, switches=cost.switches)
            rest = (written - 1) * lat.pipelined_line_ns(self.line_size, is_global=True)
            node.clock.advance(first + rest + written * lat.writeback_line_ns)
        return written

    def fence(self, node_id: int) -> None:
        """Full memory barrier (ordering is already strict here; cost only)."""
        node = self._node(node_id)
        node.check_alive()
        node.clock.advance(self.latency.fence_ns)

    # -- fault management ------------------------------------------------------------------

    def on_crash(self, hook: "Callable[[int, float], None]") -> None:
        """Register ``hook(node_id, now_ns)`` to run after any node crash."""
        self._crash_hooks.append(hook)

    def crash_node(self, node_id: int) -> None:
        node = self._node(node_id)
        node.crash()
        self.faults.record_node_crash(node_id, now_ns=node.clock.now_ns)
        for hook in self._crash_hooks:
            hook(node_id, node.clock.now_ns)

    def restart_node(self, node_id: int) -> None:
        node = self._node(node_id)
        node.restart(at_ns=self.max_time())

    def power_cycle(self) -> None:
        """Power the whole rack off and on.

        Every node restarts with a cold cache and zeroed local DRAM.
        The global pool keeps its bytes only when it is persistent
        memory (``global_kind="pmem"``) — the paper's simulated
        platform; a DRAM pool comes back zeroed.  Clocks keep running
        (wall time does not reset).
        """
        latest = self.max_time()
        for node in self.nodes.values():
            node.restart(at_ns=latest)
            node.local_mem.write(0, bytes(node.local_mem.size))
            node.local_mem.poisoned.clear()
        if self.global_mem.kind is not MemoryKind.PMEM:
            self.global_mem.write(0, bytes(self.global_mem.size))
            self.global_mem.poisoned.clear()

    def set_repair_handler(self, handler: Optional[Callable[[int, int], bool]]) -> None:
        """Install the self-healing hook: ``handler(rack_addr, node_id) -> repaired``.

        Called when an access trips on poison; a True return means the
        poisoned range was rewritten from a redundancy source and the
        access may retry.  Pass ``None`` to disable (faults surface
        immediately again).
        """
        self._repair_handler = handler

    def poisoned_addrs(self, addr: int, size: int) -> List[int]:
        """Rack addresses poisoned within ``[addr, addr+size)`` (scrub query).

        The window must lie inside one region.  This is a *diagnostic*
        read of the poison metadata — the ECC scrub engine's view — so
        it does not roll fault dice or charge data-path latency.
        """
        region, offset = self.address_map.resolve(addr, 1)
        size = min(size, region.size - offset)
        return [region.base + o for o in region.device.poisoned_in(offset, size)]

    def repair_write(self, node_id: int, addr: int, data: bytes) -> None:
        """Rewrite a (possibly poisoned) range with known-good bytes.

        The repair path: clears poison, writes the recovered content to
        the backing device, and drops the repairing node's stale cached
        lines.  Charged like a non-temporal store burst.
        """
        node, region, offset = self._access(node_id, addr, len(data))
        self._charge_bulk(node, region, len(data), write=True)
        region.device.clear_poison(offset, len(data))
        region.device.write(offset, data)
        node.cache.invalidate(addr, len(data))

    def set_link_state(self, u: str, v: str, up: bool) -> None:
        now_ns = self.max_time()
        self.fabric.set_link_state(u, v, up, now_ns=now_ns)
        self.faults.record_link_change(u, v, up, now_ns=now_ns)

    def sever_node_link(self, node_id: int, up: bool = False) -> None:
        """Take down (or restore) the first live link on the node's port."""
        src = node_vertex(node_id)
        for neighbor in self.fabric.graph.neighbors(src):
            self.set_link_state(src, neighbor, up)
            return
        raise KeyError(f"node {node_id} has no fabric links")

    # -- internals ------------------------------------------------------------------------------

    def _node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise KeyError(f"no node {node_id} in rack of {len(self.nodes)}") from None

    def _access(self, node_id: int, addr: int, size: int) -> Tuple[Node, Region, int]:
        node = self._node(node_id)
        node.check_alive()
        region, offset = self._resolve_fast(node_id, addr, size if size > 0 else 1)
        return node, region, offset

    def _resolve_fast(self, node_id: int, addr: int, size: int) -> Tuple[Region, int]:
        """Software TLB in front of :meth:`AddressMap.resolve`.

        Memoizes the last region each node touched; only regions the node
        may legally access are ever memoized, so a memo hit needs no
        protection re-check.  The memo drops when the address map changes.
        """
        tlb = self._tlb
        amap = self.address_map
        if amap.generation != self._tlb_gen:
            tlb.clear()
            self._tlb_gen = amap.generation
        entry = tlb.get(node_id)
        if entry is not None:
            base, end, region = entry
            if base <= addr and addr + size <= end:
                return region, addr - base
        region, offset = amap.resolve(addr, size)
        if region.owner is not None and region.owner != node_id:
            raise ProtectionError(
                f"node {node_id} cannot access node {region.owner}'s local memory at {addr:#x}"
            )
        tlb[node_id] = (region.base, region.base + region.size, region)
        return region, offset

    def _atomic_prologue(self, node_id: int, addr: int, width: int):
        if width not in _INT_FMT:
            raise ValueError(f"atomic width must be one of {sorted(_INT_FMT)}, got {width}")
        if addr % width:
            raise ValueError(f"atomic access at {addr:#x} not {width}-byte aligned")
        node, region, offset = self._access(node_id, addr, width)
        cost = self.latency.global_atomic_ns if region.is_global else self.latency.local_atomic_ns
        node.clock.advance(cost)
        if _TEL.enabled:
            _TEL.count(
                node_id, _SUB, "atomic.global" if region.is_global else "atomic.local"
            )
        if _TEL.atlas is not None:
            _TEL.atlas.touch(addr, width)
        node.cache.invalidate(addr, width)
        self._maybe_fault(region, offset, width, node_id)
        self._check_poison(region, offset, width, node_id)
        return node, region, offset, _INT_FMT[width]

    def _path_cost(self, node_id: int, region: Region) -> Tuple[int, int]:
        if not region.is_global:
            return 0, 0
        cost = self.fabric.path_to_gmem(node_id)
        return cost.hops, cost.switches

    def _is_pmem(self, region: Region) -> bool:
        return region.device.kind is MemoryKind.PMEM

    def _first_line_ns(self, node: Node, region: Region) -> float:
        hops, switches = self._path_cost(node.node_id, region)
        ns = self.latency.device_ns(is_global=region.is_global, hops=hops, switches=switches)
        if self._is_pmem(region):
            ns += self.latency.pmem_extra_ns
        return ns

    def _rest_line_ns(self, region: Region) -> float:
        if self._is_pmem(region):
            return self.line_size / self.latency.pmem_bw_bytes_per_ns
        return self.latency.pipelined_line_ns(self.line_size, is_global=region.is_global)

    def _line_pair_ns(self, node: Node, region: Region) -> Tuple[float, float]:
        """Memoized ``(first_line_ns, rest_line_ns)`` for one (node, region).

        Both values depend only on the latency model, the region's kind,
        and the node's fabric path, so they are computed once and reused
        until the fabric's generation moves (link or topology change).
        """
        if self.fabric.generation != self._charge_gen:
            self._charge_memo.clear()
            self._charge_gen = self.fabric.generation
        key = (node.node_id, region.base)
        pair = self._charge_memo.get(key)
        if pair is None:
            pair = (self._first_line_ns(node, region), self._rest_line_ns(region))
            self._charge_memo[key] = pair
        return pair

    def _charge_cached(self, node: Node, region: Region, hits: int, misses: int) -> None:
        if _TEL.enabled and (hits or misses):
            if hits:
                _TEL.count(node.node_id, _SUB, "cache.hit", hits)
            if misses:
                _TEL.count(node.node_id, _SUB, "cache.miss", misses)
                if region.is_global:
                    _TEL.count(node.node_id, _SUB, "cache.remote_fetch", misses)
        lat = self.latency
        ns = hits * lat.cache_hit_ns
        if misses:
            first, rest = self._line_pair_ns(node, region)
            ns += first
            ns += (misses - 1) * rest
            ns += misses * lat.cache_miss_overhead_ns
        node.clock.advance(ns)

    def _bulk_ns(self, node: Node, region: Region, size: int) -> float:
        """Charge of one non-temporal (cache-bypassing) burst.

        Loads and stores are symmetric: the first line pays full device
        latency, the rest pay bandwidth.  ``writeback_line_ns`` is *not*
        charged here — that cost models writing back lines that were
        cached, and a bypass access to a region that was never cached
        has no such lines; charging it double-counted the per-line
        transfer already covered by the bandwidth term (the old
        ``bypass_store_4k`` vs ``bypass_load_4k`` asymmetry).
        """
        n_lines = max(1, (size + self.line_size - 1) // self.line_size)
        first, rest_line = self._line_pair_ns(node, region)
        return first + (n_lines - 1) * rest_line

    def _charge_bulk(self, node: Node, region: Region, size: int, *, write: bool) -> None:
        node.clock.advance(self._bulk_ns(node, region, size))

    # -- bulk internals ----------------------------------------------------------------

    def _advance_vec(self, node: Node, charges: np.ndarray) -> None:
        """Advance the clock by ``charges`` in op order, bit-identically.

        ``np.add.accumulate`` is a strict left fold over float64, so the
        final clock value reproduces the rounding of a sequential
        ``advance`` per element exactly — the property the golden
        latency tests pin.
        """
        acc = np.empty(charges.shape[0] + 1, dtype=np.float64)
        acc[0] = node.clock._now_ns
        acc[1:] = charges
        np.add.accumulate(acc, out=acc)
        node.clock._now_ns = float(acc[-1])

    def _bulk_plan(
        self, node: Node, addrs: Sequence[int], size: int
    ) -> Optional[List[Tuple[Region, np.ndarray, np.ndarray]]]:
        """Group a batch by region: ``[(region, op_indices, offsets)]``.

        Returns ``None`` whenever only the sequential path preserves
        exact semantics: an unmapped / foreign-local / region-straddling
        address (the error must surface at its op index, after the prior
        ops' side effects), fault injection armed for a touched region
        kind (RNG draws and timestamps interleave per op), or poison
        anywhere in a touched region's coalesced window (the raise
        happens mid-batch with the clock mid-way).
        """
        try:
            arr = np.asarray(addrs, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
        if arr.ndim != 1:
            return None
        n = arr.shape[0]
        faults = self.faults
        if n:
            # fast path: the whole batch inside one region (the common
            # shape).  min/max bound every address, so one resolve of the
            # span replaces the per-region mask walk below.
            lo = int(arr.min())
            hi = int(arr.max())
            try:
                region, _ = self.address_map.resolve(lo, 1)
            except MemoryError_:
                return None
            if lo >= region.base and hi + size <= region.end:
                if region.owner is not None and region.owner != node.node_id:
                    return None  # ProtectionError belongs to one op index
                if not faults.is_noop(region.owner is None):
                    return None
                base = region.base
                if region.device.is_poisoned(lo - base, hi + size - lo):
                    return None
                return [(region, np.arange(n, dtype=np.int64), arr - base)]
        groups: List[Tuple[Region, np.ndarray, np.ndarray]] = []
        matched = 0
        for region in self.address_map.regions:
            if region.owner is not None and region.owner != node.node_id:
                if bool(np.any((arr >= region.base) & (arr < region.end))):
                    return None  # ProtectionError belongs to one op index
                continue
            mask = (arr >= region.base) & (arr + size <= region.end)
            idx = np.nonzero(mask)[0]
            if idx.shape[0] == 0:
                continue
            matched += idx.shape[0]
            if not faults.is_noop(region.owner is None):
                return None
            offs = arr[idx] - region.base
            lo = int(offs.min())
            span = int(offs.max()) + size - lo
            if region.device.is_poisoned(lo, span):
                return None
            groups.append((region, idx, offs))
        if matched != n:
            return None  # some address is unmapped or straddles a region
        return groups

    def _bulk_bypass_load(
        self, node: Node, addrs: Sequence[int], size: int
    ) -> Optional[bytes]:
        """Vectorized non-temporal gather; ``None`` means go sequential."""
        if size <= 0:
            return None
        groups = self._bulk_plan(node, addrs, size)
        if groups is None:
            return None
        n = len(addrs)
        charges = np.empty(n, dtype=np.float64)
        if len(groups) == 1 and groups[0][1].shape[0] == n:
            # whole batch in one region: idx is the identity permutation
            region, _idx, offs = groups[0]
            charges.fill(self._bulk_ns(node, region, size))
            out = region.device.gather(offs, size)
        else:
            out = np.empty((n, size), dtype=np.uint8)
            for region, idx, offs in groups:
                charges[idx] = self._bulk_ns(node, region, size)
                out[idx] = region.device.gather(offs, size)
        self._advance_vec(node, charges)
        if _TEL.enabled:
            _TEL.add(node.node_id, _SUB, "bypass.load", float(n))
        if _TEL.atlas is not None:
            _TEL.atlas.touch_many(addrs, size)
        return out.tobytes()

    def _bulk_bypass_store(
        self, node: Node, addrs: Sequence[int], data: Sequence[bytes]
    ) -> bool:
        """Vectorized non-temporal scatter; False means go sequential."""
        n = len(data)
        size = len(data[0])
        lens = np.fromiter(map(len, data), dtype=np.int64, count=n)
        if size <= 0 or bool(np.any(lens != size)):
            return False  # ragged sizes: each op charges its own burst
        groups = self._bulk_plan(node, addrs, size)
        if groups is None:
            return False
        rows = np.frombuffer(b"".join(data), dtype=np.uint8).reshape(n, size)
        return self._bulk_scatter(node, groups, rows, size)

    def _bulk_bypass_store_packed(
        self, node: Node, addrs: Sequence[int], packed, size: int
    ) -> bool:
        """Packed-buffer variant: no per-payload sizes to validate."""
        groups = self._bulk_plan(node, addrs, size)
        if groups is None:
            return False
        try:
            rows = np.frombuffer(packed, dtype=np.uint8).reshape(-1, size)
        except (TypeError, ValueError, BufferError):
            return False
        return self._bulk_scatter(node, groups, rows, size)

    def _bulk_scatter(
        self,
        node: Node,
        groups: List[Tuple[Region, np.ndarray, np.ndarray]],
        rows: np.ndarray,
        size: int,
    ) -> bool:
        """Charge and apply a planned scatter write; False = go sequential."""
        n = rows.shape[0]
        for _region, idx, offs in groups:
            if idx.shape[0] > 1:
                # overlapping (or duplicate) target windows must apply in
                # op order — numpy scatter order is unspecified
                so = np.sort(offs)
                if int((so[1:] - so[:-1]).min()) < size:
                    return False
        charges = np.empty(n, dtype=np.float64)
        if len(groups) == 1 and groups[0][1].shape[0] == n:
            # whole batch in one region: idx is the identity permutation
            region, _idx, offs = groups[0]
            charges.fill(self._bulk_ns(node, region, size))
            # plan proved no poison in the window: per-op clear_poison
            # would be a no-op, so skipping it is exact
            region.device.scatter(offs, rows)
        else:
            for region, idx, offs in groups:
                charges[idx] = self._bulk_ns(node, region, size)
                region.device.scatter(offs, rows[idx])
        self._advance_vec(node, charges)
        if _TEL.enabled:
            _TEL.add(node.node_id, _SUB, "bypass.store", float(n))
        atlas = _TEL.atlas
        if atlas is not None:
            # plan groups carry (region, idx, offs): reconstruct addresses
            for region, _idx, offs in groups:
                atlas.touch_many(region.base + offs, size)
        return True

    def _bulk_cached_load(
        self, node: Node, addrs: Sequence[int], size: int
    ) -> List[bytes]:
        """Fused cached-load loop: the single-op hit fast path with the
        per-op call overhead hoisted out.  Clock, stats and telemetry
        accumulate locally and flush whenever an op leaves the fast path
        (miss, multi-line, dead node), so every observable matches the
        sequential loop exactly — including the clock value any general
        -path op reads mid-batch."""
        out: List[bytes] = []
        append = out.append
        node_id = node.node_id
        if size <= 0:
            for a in addrs:
                append(self.load(node_id, a, size))
            return out
        mask = self._line_mask
        line_sz = mask + 1
        hit_ns = self._hit_ns
        cache = node.cache
        lines = cache._lines
        get = lines.get
        move = lines.move_to_end
        clock = node.clock
        atlas = _TEL.atlas
        hit_addrs: Optional[List[int]] = [] if atlas is not None else None
        t = clock._now_ns
        pend = 0
        for a in addrs:
            base = a & ~mask
            if node.alive and a + size <= base + line_sz:
                line = get(base)
                if line is not None:
                    move(base)
                    pend += 1
                    t += hit_ns
                    if hit_addrs is not None:
                        hit_addrs.append(a)
                    lo = a - base
                    append(bytes(line.data[lo : lo + size]))
                    continue
            if pend:
                clock._now_ns = t
                cache.stats.hits += pend
                if _TEL.enabled:
                    _TEL.add(node_id, _SUB, "cache.hit", float(pend))
                pend = 0
            append(self.load(node_id, a, size))
            t = clock._now_ns
        if pend:
            clock._now_ns = t
            cache.stats.hits += pend
            if _TEL.enabled:
                _TEL.add(node_id, _SUB, "cache.hit", float(pend))
        if hit_addrs:
            # misses routed through self.load fed the sketch already;
            # hits flush as one aggregated batch (TelemetryState.add style)
            atlas.touch_many(hit_addrs, size)
        return out

    def _bulk_cached_store(
        self, node: Node, addrs: Sequence[int], data: Sequence[bytes]
    ) -> None:
        """Fused cached-store loop (see :meth:`_bulk_cached_load`)."""
        node_id = node.node_id
        mask = self._line_mask
        line_sz = mask + 1
        hit_ns = self._hit_ns
        cache = node.cache
        lines = cache._lines
        get = lines.get
        move = lines.move_to_end
        clock = node.clock
        atlas = _TEL.atlas
        hit_addrs: Optional[List[int]] = [] if atlas is not None else None
        hit_sizes: List[int] = []
        t = clock._now_ns
        pend = 0
        for a, d in zip(addrs, data):
            size = len(d)
            base = a & ~mask
            if 0 < size and node.alive and a + size <= base + line_sz:
                line = get(base)
                if line is not None:
                    move(base)
                    lo = a - base
                    line.data[lo : lo + size] = d
                    line.dirty = True
                    pend += 1
                    t += hit_ns
                    if hit_addrs is not None:
                        hit_addrs.append(a)
                        hit_sizes.append(size)
                    continue
            if pend:
                clock._now_ns = t
                cache.stats.hits += pend
                if _TEL.enabled:
                    _TEL.add(node_id, _SUB, "cache.hit", float(pend))
                pend = 0
            self.store(node_id, a, d)
            t = clock._now_ns
        if pend:
            clock._now_ns = t
            cache.stats.hits += pend
            if _TEL.enabled:
                _TEL.add(node_id, _SUB, "cache.hit", float(pend))
        if hit_addrs:
            atlas.touch_many(hit_addrs, hit_sizes)

    def _bulk_atomic_plan(
        self, node_id: int, addrs: Sequence[int], width: int
    ) -> Optional[Tuple[Node, List[Tuple[Region, np.ndarray, np.ndarray]]]]:
        """Plan a batched atomic; ``None`` means go sequential.

        On top of :meth:`_bulk_plan`'s rules, atomics also go sequential
        on a dead node (the raise), a misaligned address (the raise at
        its index), duplicate addresses (chained read-modify-writes),
        or any touched line resident in the issuing node's cache (the
        per-op invalidate is observable in eviction order).
        """
        if width not in _INT_DTYPE:
            raise ValueError(
                f"atomic width must be one of {sorted(_INT_FMT)}, got {width}"
            )
        node = self.nodes.get(node_id)
        if node is None or not node.alive:
            return None
        try:
            arr = np.asarray(addrs, dtype=np.int64)
        except (TypeError, ValueError, OverflowError):
            return None
        if arr.ndim != 1:
            return None
        if width > 1 and bool(np.any(arr % width)):
            return None
        srt = np.sort(arr)
        if srt.shape[0] > 1 and bool(np.any(srt[1:] == srt[:-1])):
            return None  # duplicates: chained read-modify-writes
        lines = node.cache._lines
        if lines:
            bases = srt & ~self._line_mask  # sorted, possibly repeated
            if bases.shape[0] > 1:
                keep = np.empty(bases.shape[0], dtype=bool)
                keep[0] = True
                np.not_equal(bases[1:], bases[:-1], out=keep[1:])
                bases = bases[keep]
            # membership test over the smaller side
            if len(lines) < bases.shape[0]:
                base_set = set(bases.tolist())
                for cached in lines:
                    if cached in base_set:
                        return None
            else:
                for base in bases.tolist():
                    if base in lines:
                        return None
        groups = self._bulk_plan(node, arr, width)
        if groups is None:
            return None
        return node, groups

    def _bulk_atomic_epilogue(
        self,
        node: Node,
        addrs: Sequence[int],
        groups: List[Tuple[Region, np.ndarray, np.ndarray]],
        width: int = 8,
    ) -> None:
        """Charge and count a vectorized atomic batch.

        The plan proved no fault, poison, or cached line is involved, so
        only the final clock value is observable — accumulated in op
        order to keep float rounding identical to the sequential loop.
        """
        n = len(addrs)
        lat = self.latency
        charges = np.empty(n, dtype=np.float64)
        n_global = 0
        for region, idx, _offs in groups:
            if region.is_global:
                charges[idx] = lat.global_atomic_ns
                n_global += idx.shape[0]
            else:
                charges[idx] = lat.local_atomic_ns
        self._advance_vec(node, charges)
        if _TEL.enabled:
            if n_global:
                _TEL.add(node.node_id, _SUB, "atomic.global", float(n_global))
            if n > n_global:
                _TEL.add(node.node_id, _SUB, "atomic.local", float(n - n_global))
        if _TEL.atlas is not None:
            _TEL.atlas.touch_many(addrs, width)

    def _charge_writeback(self, node: Node, region: Region, lines: int) -> None:
        if _TEL.enabled:
            _TEL.count(node.node_id, _SUB, "cache.writeback_lines", lines)
        first, rest_line = self._line_pair_ns(node, region)
        rest = (lines - 1) * rest_line
        node.clock.advance(first + rest + lines * self.latency.writeback_line_ns)

    def _maybe_fault(self, region: Region, offset: int, size: int, node_id: int) -> None:
        faults = self.faults
        if faults.is_noop(region.owner is None):
            # no fault can fire for this region kind: skip the path-cost
            # lookup and the injector call without touching the RNG stream
            return
        hops, switches = self._path_cost(node_id, region)
        faults.on_access(
            region, offset, size, node_id, self.now(node_id), path_cost=hops + switches
        )

    def _check_poison(self, region: Region, offset: int, size: int, node_id: int) -> None:
        device = region.device
        if not device.is_poisoned(offset, size):
            return
        handler = self._repair_handler
        if handler is not None and not self._in_repair:
            # bounded retry-after-repair: hand the poisoned address to the
            # self-healing pipeline, back off, and re-check.  The guard
            # stops the handler's own reads from re-entering this path.
            node = self.nodes.get(node_id)
            for attempt in range(1, self.repair_max_retries + 1):
                victims = device.poisoned_in(offset, size)
                if not victims:
                    return
                if _TEL.enabled:
                    _TEL.count(node_id, _SUB, "fault.retry")
                self._in_repair = True
                try:
                    repaired = handler(region.base + victims[0], node_id)
                finally:
                    self._in_repair = False
                if node is not None:
                    node.clock.advance(self.repair_backoff_ns * attempt)
                if not repaired:
                    break
            if not device.is_poisoned(offset, size):
                return
        if _TEL.enabled:
            _TEL.count(node_id, _SUB, "fault.ue_raised")
        raise UncorrectableMemoryError(region.base + offset, node_id)

    def _make_backing_reader(self, node_id: int):
        def read_backing(addr: int, size: int) -> bytes:
            region, offset = self._resolve_fast(node_id, addr, size)
            self._maybe_fault(region, offset, size, node_id)
            self._check_poison(region, offset, size, node_id)
            return region.device.read(offset, size)

        return read_backing

    def _make_backing_writer(self, node_id: int):
        def write_backing(addr: int, data: bytes) -> None:
            region, offset = self._resolve_fast(node_id, addr, len(data))
            region.device.clear_poison(offset, len(data))
            region.device.write(offset, data)

        return write_backing


class NodeContext:
    """All machine operations bound to one node — the handle software holds."""

    __slots__ = ("machine", "node_id")

    def __init__(self, machine: RackMachine, node_id: int) -> None:
        self.machine = machine
        self.node_id = node_id

    # data path
    def load(self, addr: int, size: int, *, bypass_cache: bool = False) -> bytes:
        return self.machine.load(self.node_id, addr, size, bypass_cache=bypass_cache)

    def store(self, addr: int, data: bytes, *, bypass_cache: bool = False) -> None:
        self.machine.store(self.node_id, addr, data, bypass_cache=bypass_cache)

    # bulk data plane
    def load_many(
        self,
        addrs: Sequence[int],
        size: int,
        *,
        bypass_cache: bool = False,
        concat: bool = False,
    ) -> Union[List[bytes], bytes]:
        return self.machine.load_many(
            self.node_id, addrs, size, bypass_cache=bypass_cache, concat=concat
        )

    def store_many(
        self,
        addrs: Sequence[int],
        data: Union[Sequence[bytes], bytes],
        *,
        bypass_cache: bool = False,
        size: Optional[int] = None,
    ) -> None:
        self.machine.store_many(
            self.node_id, addrs, data, bypass_cache=bypass_cache, size=size
        )

    def copy(self, dst: int, src: int, size: int, *, bypass_cache: bool = False) -> None:
        self.machine.copy(self.node_id, dst, src, size, bypass_cache=bypass_cache)

    def fill(self, addr: int, size: int, value: int, *, bypass_cache: bool = False) -> None:
        self.machine.fill(self.node_id, addr, size, value, bypass_cache=bypass_cache)

    def fetch_add_many(
        self,
        addrs: Sequence[int],
        deltas: Union[int, Sequence[int]] = 1,
        width: int = 8,
    ) -> List[int]:
        return self.machine.atomic_fetch_add_many(self.node_id, addrs, deltas, width)

    def cas_many(
        self,
        addrs: Sequence[int],
        expected: Sequence[int],
        new: Sequence[int],
        width: int = 8,
    ) -> List[Tuple[bool, int]]:
        return self.machine.atomic_cas_many(self.node_id, addrs, expected, new, width)

    def atomic_load_many(self, addrs: Sequence[int], width: int = 8) -> List[int]:
        return self.machine.atomic_load_many(self.node_id, addrs, width)

    # atomics
    def cas(self, addr: int, expected: int, new: int, width: int = 8) -> Tuple[bool, int]:
        return self.machine.atomic_cas(self.node_id, addr, expected, new, width)

    def fetch_add(self, addr: int, delta: int, width: int = 8) -> int:
        return self.machine.atomic_fetch_add(self.node_id, addr, delta, width)

    def swap(self, addr: int, new: int, width: int = 8) -> int:
        return self.machine.atomic_swap(self.node_id, addr, new, width)

    def atomic_load(self, addr: int, width: int = 8) -> int:
        return self.machine.atomic_load(self.node_id, addr, width)

    def atomic_store(self, addr: int, value: int, width: int = 8) -> None:
        self.machine.atomic_store(self.node_id, addr, value, width)

    # maintenance
    def flush(self, addr: int, size: int) -> int:
        return self.machine.flush(self.node_id, addr, size)

    def invalidate(self, addr: int, size: int) -> int:
        return self.machine.invalidate(self.node_id, addr, size)

    def flush_invalidate(self, addr: int, size: int) -> Tuple[int, int]:
        return self.machine.flush_invalidate(self.node_id, addr, size)

    def fence(self) -> None:
        self.machine.fence(self.node_id)

    # time
    def now(self) -> float:
        return self.machine.now(self.node_id)

    def advance(self, ns: float) -> float:
        return self.machine.advance(self.node_id, ns)

    @property
    def node(self) -> Node:
        return self.machine.nodes[self.node_id]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeContext(node={self.node_id})"


def _mask(width: int) -> int:
    return (1 << (8 * width)) - 1


def _split(buf: bytes, size: int) -> List[bytes]:
    """Cut a packed gather result into per-op ``bytes`` chunks."""
    return [buf[i : i + size] for i in range(0, len(buf), size)]
