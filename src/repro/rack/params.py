"""Configuration objects for the simulated rack.

The latency model is the calibration surface of the reproduction: the
paper's evaluation ran on a two-node Kunpeng 920 rack joined by HCCS, and
we reproduce the *shape* of its results by charging simulated nanoseconds
for every memory, cache, and interconnect operation.  Defaults below are
taken from published CXL/HCCS latency ranges (local DRAM ~90 ns, one-hop
interconnected memory 250-400 ns, switched paths higher).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class LatencyModel:
    """Nanosecond costs charged to a node's simulated clock.

    Bulk transfers are pipelined: the first cache line of a contiguous
    access pays full device latency, subsequent lines pay the bandwidth
    cost ``line_size / *_bw_bytes_per_ns``.
    """

    #: Hit in the node's private cache.
    cache_hit_ns: float = 2.0
    #: Extra lookup cost added to every miss before the device is charged.
    cache_miss_overhead_ns: float = 2.0
    #: Access to the node's local DRAM (cache miss service time).
    local_dram_ns: float = 90.0
    #: Base access latency of interconnect-attached global memory.
    global_base_ns: float = 250.0
    #: Added per interconnect hop between the node and global memory.
    hop_ns: float = 70.0
    #: Added per switch traversed on that path.
    switch_ns: float = 40.0
    #: Round trip of a cache-bypassing atomic on global memory.
    global_atomic_ns: float = 450.0
    #: Atomic on the node's own local memory.
    local_atomic_ns: float = 20.0
    #: Writing back one dirty line to its backing device (on top of the
    #: device latency for the first line of a burst).
    writeback_line_ns: float = 2.0
    #: Dropping / invalidating one cache line.
    invalidate_line_ns: float = 1.5
    #: Memory barrier.
    fence_ns: float = 8.0
    #: Streaming bandwidth of local DRAM in bytes per nanosecond (~25 GB/s).
    local_bw_bytes_per_ns: float = 25.0
    #: Streaming bandwidth of global memory in bytes per nanosecond (~24 GB/s,
    #: HCCS-class; well above the 25 GbE wire of the network baseline).
    global_bw_bytes_per_ns: float = 24.0
    #: Extra access latency when the global pool is persistent memory
    #: (Optane-class media is slower than DRAM behind the same fabric).
    pmem_extra_ns: float = 120.0
    #: Streaming bandwidth of persistent global memory (~8 GB/s).
    pmem_bw_bytes_per_ns: float = 8.0

    def device_ns(self, *, is_global: bool, hops: int, switches: int) -> float:
        """Latency of one uncached access to a backing device."""
        if is_global:
            return self.global_base_ns + hops * self.hop_ns + switches * self.switch_ns
        return self.local_dram_ns

    def pipelined_line_ns(self, line_size: int, *, is_global: bool) -> float:
        """Cost of each additional line in a contiguous burst."""
        bw = self.global_bw_bytes_per_ns if is_global else self.local_bw_bytes_per_ns
        return line_size / bw


@dataclass
class FaultModel:
    """Per-access fault probabilities for the injector.

    The paper argues global memory is *less* reliable because smaller
    process nodes raise raw bit-error rates and every hop/switch widens
    the fault surface.  We model that with a base per-access probability
    multiplied per hop traversed.
    """

    #: Probability of a correctable (ECC-corrected) error per global access.
    global_ce_rate: float = 0.0
    #: Probability of an uncorrectable error per global access.
    global_ue_rate: float = 0.0
    #: Same for local memory accesses (orders of magnitude lower in practice).
    local_ce_rate: float = 0.0
    local_ue_rate: float = 0.0
    #: Multiplier applied once per hop+switch on the access path.
    per_hop_multiplier: float = 1.5
    #: Probability an injected error corrupts a full line rather than a bit.
    line_corruption_ratio: float = 0.1


@dataclass
class RackConfig:
    """Static description of the rack used to build a :class:`RackMachine`."""

    n_nodes: int = 2
    cores_per_node: int = 320
    #: Bytes of private DRAM per node.
    local_mem_size: int = 1 << 24
    #: Bytes of interconnect-attached shared global memory.
    global_mem_size: int = 1 << 26
    cache_line_size: int = 64
    #: Lines in each node's private cache.
    cache_lines: int = 4096
    #: Name of a builder in :mod:`repro.rack.topology`.
    topology: str = "dual_direct"
    #: Media of the shared global pool: "dram" (volatile) or "pmem"
    #: (persistent across :meth:`RackMachine.power_cycle`, slower) — the
    #: paper's simulated platform shares persistent memory between VMs.
    global_kind: str = "dram"
    latency: LatencyModel = field(default_factory=LatencyModel)
    faults: FaultModel = field(default_factory=FaultModel)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("rack needs at least one node")
        if self.cache_line_size & (self.cache_line_size - 1):
            raise ValueError("cache_line_size must be a power of two")
        if self.local_mem_size % self.cache_line_size:
            raise ValueError("local_mem_size must be line aligned")
        if self.global_mem_size % self.cache_line_size:
            raise ValueError("global_mem_size must be line aligned")
        if self.global_kind not in ("dram", "pmem"):
            raise ValueError(f"global_kind must be 'dram' or 'pmem', not {self.global_kind!r}")


#: Base physical address of the shared global-memory region.  Node-local
#: regions are laid out beneath it, one stride per node.
GLOBAL_BASE = 1 << 40
#: Address stride reserved for each node's local region.
LOCAL_STRIDE = 1 << 36
