"""Fabric topology builders.

Each builder returns an :class:`~repro.rack.interconnect.Interconnect`
wired for ``n_nodes``.  ``dual_direct`` reproduces the paper's physical
testbed (two Kunpeng nodes joined by HCCS with directly attached shared
memory); the switched variants model larger CXL 3.x style racks where
accesses traverse one or two switch levels.

Every builder takes an optional ``link_capacity_bytes_per_s``: when
given, each created link carries that capacity as an edge attribute, so
the per-link accounting (:class:`~repro.rack.interconnect.LinkTable`)
can tell a saturated port from a loafing one.  Without it, links
inherit the fabric-wide capacity of the VNI table (the historical
behaviour — one aggregate pipe).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from .interconnect import GMEM_VERTEX, Interconnect, node_vertex, switch_vertex


def dual_direct(
    n_nodes: int, link_capacity_bytes_per_s: Optional[float] = None
) -> Interconnect:
    """Every node port is cabled straight to the global memory device."""
    fabric = Interconnect()
    fabric.add_gmem()
    for node_id in range(n_nodes):
        fabric.add_node_port(node_id)
        fabric.link(node_vertex(node_id), GMEM_VERTEX,
                    capacity_bytes_per_s=link_capacity_bytes_per_s)
    return fabric


def single_switch(
    n_nodes: int, link_capacity_bytes_per_s: Optional[float] = None
) -> Interconnect:
    """All nodes reach global memory through one shared switch."""
    fabric = Interconnect()
    fabric.add_gmem()
    fabric.add_switch(0)
    fabric.link(switch_vertex(0), GMEM_VERTEX,
                capacity_bytes_per_s=link_capacity_bytes_per_s)
    for node_id in range(n_nodes):
        fabric.add_node_port(node_id)
        fabric.link(node_vertex(node_id), switch_vertex(0),
                    capacity_bytes_per_s=link_capacity_bytes_per_s)
    return fabric


def two_tier(
    n_nodes: int,
    nodes_per_leaf: int = 4,
    link_capacity_bytes_per_s: Optional[float] = None,
) -> Interconnect:
    """Leaf switches per group of nodes, a spine switch in front of gmem.

    Leaf switches also interconnect through the spine, so losing the
    spine severs global memory but a leaf loss only severs its group.
    """
    fabric = Interconnect()
    fabric.add_gmem()
    spine = 0
    fabric.add_switch(spine)
    fabric.link(switch_vertex(spine), GMEM_VERTEX,
                capacity_bytes_per_s=link_capacity_bytes_per_s)
    n_leaves = max(1, (n_nodes + nodes_per_leaf - 1) // nodes_per_leaf)
    for leaf in range(1, n_leaves + 1):
        fabric.add_switch(leaf)
        fabric.link(switch_vertex(leaf), switch_vertex(spine),
                    capacity_bytes_per_s=link_capacity_bytes_per_s)
    for node_id in range(n_nodes):
        leaf = 1 + node_id // nodes_per_leaf
        fabric.add_node_port(node_id)
        fabric.link(node_vertex(node_id), switch_vertex(leaf),
                    capacity_bytes_per_s=link_capacity_bytes_per_s)
    return fabric


BUILDERS: Dict[str, Callable[..., Interconnect]] = {
    "dual_direct": dual_direct,
    "single_switch": single_switch,
    "two_tier": two_tier,
}


def build(
    name: str,
    n_nodes: int,
    link_capacity_bytes_per_s: Optional[float] = None,
) -> Interconnect:
    """Look up a topology builder by name and run it."""
    try:
        builder = BUILDERS[name]
    except KeyError:
        raise KeyError(f"unknown topology {name!r}; choose from {sorted(BUILDERS)}") from None
    return builder(n_nodes, link_capacity_bytes_per_s=link_capacity_bytes_per_s)
