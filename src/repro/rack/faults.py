"""Deterministic fault injection for the rack substrate.

§2.2 of the paper: global memory fails more often (smaller transistors,
manufacturing defects) and every interconnect hop and switch widens the
fault surface.  The injector reproduces that taxonomy:

* **Correctable errors (CE)** — ECC fixed the bit; data is fine but the
  event is visible to the health monitor (failure-prediction input).
* **Uncorrectable errors (UE)** — the accessed bytes are poisoned; the
  consumer sees :class:`~repro.rack.memory.UncorrectableMemoryError`.
* **Link failures** — a fabric link goes down; paths lengthen or sever.
* **Node crashes** — a node dies with whatever was in its cache lost.

Everything is driven by a seeded RNG so experiments are reproducible.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Dict, List, Optional

from ..telemetry import TELEMETRY as _TEL
from .memory import PhysicalMemory, Region
from .params import FaultModel

_SUB = "reliability"


class FaultKind(Enum):
    CORRECTABLE = "ce"
    UNCORRECTABLE = "ue"
    LINK_DOWN = "link_down"
    LINK_UP = "link_up"
    NODE_CRASH = "node_crash"
    #: A poisoned range was rewritten from a redundancy source (self-healing).
    REPAIR = "repair"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the rack's fault log."""

    kind: FaultKind
    time_ns: float
    #: Physical address for memory faults, ``None`` otherwise.
    addr: Optional[int] = None
    #: Node observing or suffering the fault.
    node_id: Optional[int] = None
    detail: str = ""


class FaultLog:
    """Append-only record of injected faults; the health monitor reads it.

    Events arrive in non-decreasing ``time_ns`` order (simulated clocks
    only move forward), so a per-kind index plus a parallel timestamp
    list turns ``since_ns`` queries into a bisect + slice instead of a
    full scan — CE storms append millions of events and the monitor
    polls constantly.  Long campaigns call :meth:`compact` to drop the
    prefix they no longer query; ``total_recorded`` keeps the all-time
    count across compactions.
    """

    def __init__(self) -> None:
        self._events: List[FaultEvent] = []
        self._times: List[float] = []
        self._by_kind: Dict[FaultKind, List[FaultEvent]] = {}
        self._times_by_kind: Dict[FaultKind, List[float]] = {}
        self._listeners: List[Callable[[FaultEvent], None]] = []
        #: All-time count, unaffected by :meth:`compact`.
        self.total_recorded = 0

    def record(self, event: FaultEvent) -> None:
        self._events.append(event)
        self._times.append(event.time_ns)
        self._by_kind.setdefault(event.kind, []).append(event)
        self._times_by_kind.setdefault(event.kind, []).append(event.time_ns)
        self.total_recorded += 1
        if _TEL.enabled:
            _TEL.registry.inc(
                event.node_id if event.node_id is not None else -1,
                _SUB,
                f"fault.{event.kind.value}",
                now_ns=event.time_ns,
            )
        for listener in self._listeners:
            listener(event)

    def subscribe(self, listener: Callable[[FaultEvent], None]) -> None:
        self._listeners.append(listener)

    def events(self, kind: Optional[FaultKind] = None, since_ns: float = 0.0) -> List[FaultEvent]:
        if kind is None:
            events, times = self._events, self._times
        else:
            events = self._by_kind.get(kind, [])
            times = self._times_by_kind.get(kind, [])
        if since_ns <= 0.0 or not events:
            return list(events)
        return events[bisect_left(times, since_ns) :]

    def count(self, kind: Optional[FaultKind] = None, since_ns: float = 0.0) -> int:
        """Event count without materialising the list."""
        if kind is None:
            times = self._times
        else:
            times = self._times_by_kind.get(kind, [])
        if since_ns <= 0.0:
            return len(times)
        return len(times) - bisect_left(times, since_ns)

    def compact(self, before_ns: float) -> int:
        """Drop events older than ``before_ns``; returns how many went.

        Bounded-memory operation for long chaos campaigns: the retained
        suffix keeps its order, listeners are unaffected (they already
        saw the dropped events), and ``total_recorded`` still counts them.
        """
        cut = bisect_left(self._times, before_ns)
        if cut == 0:
            return 0
        del self._events[:cut]
        del self._times[:cut]
        for k, times in self._times_by_kind.items():
            kcut = bisect_left(times, before_ns)
            if kcut:
                del times[:kcut]
                del self._by_kind[k][:kcut]
        return cut

    def __len__(self) -> int:
        return len(self._events)


class FaultInjector:
    """Applies the :class:`FaultModel` on every memory access.

    The machine calls :meth:`on_access` for each backing-device touch; the
    injector rolls the dice, mutates the device in place for CEs/UEs, and
    records the event.  Explicit injection methods exist for targeted
    failure tests.
    """

    def __init__(self, model: FaultModel, seed: int = 0) -> None:
        self.model = model
        self.rng = random.Random(seed)
        self.log = FaultLog()
        self.enabled = True
        # Memo of scaled (ce, ue) per (is_global, path_cost): the model is
        # static after construction, so the per-hop exponentiation only
        # runs once per distinct path.  Call :meth:`model_changed` if a
        # test mutates the model in place.
        self._rate_cache: dict = {}

    def model_changed(self) -> None:
        """Drop memoized rates after an in-place :class:`FaultModel` edit."""
        self._rate_cache.clear()

    def is_noop(self, is_global: bool) -> bool:
        """True when no fault can fire for this region kind.

        Zero base rates stay zero under any per-hop scaling, so the flag
        is independent of path cost.  Reads the live model fields — no
        invalidation needed — and lets the machine skip the per-access
        call entirely without touching the seeded RNG stream (zero rates
        never consumed randomness in the first place).
        """
        if not self.enabled:
            return True
        m = self.model
        if is_global:
            return m.global_ce_rate <= 0 and m.global_ue_rate <= 0
        return m.local_ce_rate <= 0 and m.local_ue_rate <= 0

    def _rates(self, region: Region, path_cost: int) -> tuple:
        key = (region.owner is None, path_cost)
        cached = self._rate_cache.get(key)
        if cached is not None:
            return cached
        if region.is_global:
            ce, ue = self.model.global_ce_rate, self.model.global_ue_rate
        else:
            ce, ue = self.model.local_ce_rate, self.model.local_ue_rate
        if path_cost > 0:
            scale = self.model.per_hop_multiplier**path_cost
            ce *= scale
            ue *= scale
        self._rate_cache[key] = (ce, ue)
        return ce, ue

    def on_access(
        self, region: Region, offset: int, size: int, node_id: int, now_ns: float, path_cost: int = 0
    ) -> None:
        """Possibly inject a fault into the accessed range."""
        if not self.enabled or size <= 0:
            return
        ce_rate, ue_rate = self._rates(region, path_cost)
        if ue_rate > 0 and self.rng.random() < ue_rate:
            victim = offset + self.rng.randrange(size)
            self.inject_ue(region.device, victim, node_id=node_id, now_ns=now_ns, rack_addr=region.base + victim)
        elif ce_rate > 0 and self.rng.random() < ce_rate:
            victim = offset + self.rng.randrange(size)
            self.log.record(
                FaultEvent(
                    kind=FaultKind.CORRECTABLE,
                    time_ns=now_ns,
                    addr=region.base + victim,
                    node_id=node_id,
                    detail="ecc corrected",
                )
            )

    # -- explicit injection (targeted tests & benchmarks) ---------------------

    def inject_ce(self, rack_addr: int, node_id: int = -1, now_ns: float = 0.0) -> None:
        self.log.record(
            FaultEvent(FaultKind.CORRECTABLE, time_ns=now_ns, addr=rack_addr, node_id=node_id)
        )

    def inject_ue(
        self,
        device: PhysicalMemory,
        offset: int,
        *,
        node_id: int = -1,
        now_ns: float = 0.0,
        rack_addr: Optional[int] = None,
        size: int = 1,
    ) -> None:
        """Poison ``size`` bytes of ``device`` starting at ``offset``."""
        if self.rng.random() < self.model.line_corruption_ratio:
            size = max(size, 64)
            offset &= ~63
            # devices smaller than a line would push the offset negative;
            # clamp to [0, size] and shrink the spread to the device
            size = min(size, device.size)
            offset = max(0, min(offset, device.size - size))
        device.poison(offset, size)
        self.log.record(
            FaultEvent(
                kind=FaultKind.UNCORRECTABLE,
                time_ns=now_ns,
                addr=rack_addr if rack_addr is not None else offset,
                node_id=node_id,
                detail=f"poisoned {size}B",
            )
        )

    def inject_bitflip(self, device: PhysicalMemory, offset: int, bit: int = 0) -> None:
        """Silent single-bit corruption (no ECC event — SDC scenario)."""
        device.flip_bit(offset, bit)

    def record_link_change(self, u: str, v: str, up: bool, now_ns: float = 0.0) -> None:
        self.log.record(
            FaultEvent(
                kind=FaultKind.LINK_UP if up else FaultKind.LINK_DOWN,
                time_ns=now_ns,
                detail=f"{u}<->{v}",
            )
        )

    def record_node_crash(self, node_id: int, now_ns: float = 0.0) -> None:
        self.log.record(FaultEvent(FaultKind.NODE_CRASH, time_ns=now_ns, node_id=node_id))

    def record_repair(
        self, rack_addr: int, node_id: int = -1, now_ns: float = 0.0, detail: str = ""
    ) -> None:
        """Log a successful in-place repair of a poisoned range."""
        self.log.record(
            FaultEvent(FaultKind.REPAIR, time_ns=now_ns, addr=rack_addr, node_id=node_id, detail=detail)
        )
