"""Lightweight span tracing over the simulated clocks.

A *span* is one timed operation (``fs.read``, ``ipc.rpc.call``,
``chaos.step``) with a begin/end timestamp read from the issuing node's
simulated clock.  Spans opened while another span is active are linked
to it as children, so a run produces cause-linked trees: a chaos step
contains the repair it triggered contains the source reads the repair
issued.

Two exports:

* **Chrome ``trace_event`` JSON** — complete (``"ph": "X"``) events,
  one ``pid`` per node, loadable in ``chrome://tracing`` / Perfetto;
* **flamegraph-style text summary** — ``root;child;leaf  total_ns  count``
  lines, aggregated by call path, for terminals and CI logs.

The tracer is deterministic: span ids are a resettable counter and all
timestamps are simulated nanoseconds, so two identical runs export
byte-identical traces.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

#: Sentinel for :meth:`TraceBuffer.begin`'s ``parent_id``: distinguishes
#: "use the open-span stack" (default) from an explicit parent — which
#: may legitimately be ``None`` (force a root span).
STACK_PARENT = object()


@dataclass
class Span:
    """One finished (or in-flight) traced operation."""

    span_id: int
    name: str
    node: int
    start_ns: float
    end_ns: float = 0.0
    parent_id: Optional[int] = None
    args: Tuple[Tuple[str, object], ...] = ()

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


class TraceBuffer:
    """Collects finished spans and tracks the open-span stack."""

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1

    # -- recording -------------------------------------------------------------

    def begin(
        self, name: str, node: int, start_ns: float, parent_id=STACK_PARENT, **args
    ) -> Span:
        """Open a span.  ``parent_id`` defaults to the top of the open-span
        stack; pass an explicit span id (or ``None`` for a root) when the
        causal parent is *not* the enclosing span — e.g. a hedge duplicate
        fired later from the event heap, which must chain to the batch
        span that launched it, not to whatever happens to be open."""
        if parent_id is STACK_PARENT:
            parent_id = self._stack[-1].span_id if self._stack else None
        span = Span(
            span_id=self._next_id,
            name=name,
            node=node,
            start_ns=start_ns,
            parent_id=parent_id,
            args=tuple(sorted(args.items())),
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    @staticmethod
    def annotate(span: Span, **args) -> None:
        """Merge late-bound args (e.g. an outcome) into an open span."""
        span.args = tuple(sorted(dict(span.args, **args).items()))

    def end(self, span: Span, end_ns: float) -> None:
        # close any forgotten children first so the stack stays consistent
        while self._stack and self._stack[-1] is not span:
            orphan = self._stack.pop()
            orphan.end_ns = max(orphan.start_ns, end_ns)
            self.spans.append(orphan)
        if self._stack:
            self._stack.pop()
        span.end_ns = max(span.start_ns, end_ns)
        self.spans.append(span)

    def clear(self) -> None:
        self.spans.clear()
        self._stack.clear()
        self._next_id = 1

    @property
    def depth(self) -> int:
        return len(self._stack)

    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    # -- export ----------------------------------------------------------------

    def to_chrome_trace(self) -> dict:
        """Chrome ``trace_event`` JSON object (the JSON Object Format).

        One complete (``"X"``) event per span; ``pid`` is the node
        (``pid 0`` hosts rack-wide spans as node ``-1`` is not a valid
        pid in the viewers), ``tid`` is the span's root cause so each
        causal tree gets its own track.  Timestamps are microseconds, as
        the format requires; sub-ns precision survives as fractions.
        """
        events = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": self._pid(node),
                "tid": 0,
                "args": {"name": f"node{node}" if node >= 0 else "rack"},
            }
            for node in sorted({s.node for s in self.spans})
        ]
        roots = self._root_of()
        for span in sorted(self.spans, key=lambda s: (s.start_ns, s.span_id)):
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": span.start_ns / 1000.0,
                    "dur": span.duration_ns / 1000.0,
                    "pid": self._pid(span.node),
                    "tid": roots[span.span_id],
                    "args": dict(span.args, span_id=span.span_id,
                                 parent_id=span.parent_id),
                }
            )
        return {"traceEvents": events, "displayTimeUnit": "ns"}

    def flame_summary(self, max_rows: int = 40) -> str:
        """Flamegraph-style folded-stack summary, hottest paths first."""
        totals: Dict[Tuple[str, ...], List[float]] = {}
        paths = self._paths()
        for span in self.spans:
            path = paths[span.span_id]
            entry = totals.setdefault(path, [0.0, 0])
            entry[0] += span.duration_ns
            entry[1] += 1
        if not totals:
            return "(no spans recorded)"
        rows = sorted(totals.items(), key=lambda kv: (-kv[1][0], kv[0]))
        width = max(len(";".join(p)) for p, _ in rows[:max_rows])
        lines = [f"{'path':<{width}}  {'total_ns':>14}  {'count':>7}"]
        for path, (total, count) in rows[:max_rows]:
            lines.append(f"{';'.join(path):<{width}}  {total:>14,.1f}  {count:>7}")
        if len(rows) > max_rows:
            lines.append(f"... {len(rows) - max_rows} more paths")
        return "\n".join(lines)

    # -- critical path ---------------------------------------------------------

    def critical_path(self) -> List[Span]:
        """The heaviest causal chain, root to leaf.

        Walks every cause-linked tree and returns the root→leaf chain
        maximising total span duration — the request-path answer to
        "where did the time go".  Deterministic: ties break toward the
        smallest span id, so two identical runs report the same chain.
        """
        if not self.spans:
            return []
        by_id = self._by_id()
        kids: Dict[int, List[Span]] = {}
        roots: List[Span] = []
        for s in self.spans:
            if s.parent_id is not None and s.parent_id in by_id:
                kids.setdefault(s.parent_id, []).append(s)
            else:
                roots.append(s)
        memo: Dict[int, Tuple[float, List[Span]]] = {}

        def solve(span: Span) -> Tuple[float, List[Span]]:
            cached = memo.get(span.span_id)
            if cached is not None:
                return cached
            best_total, best_path = 0.0, []
            for child in sorted(kids.get(span.span_id, ()), key=lambda c: c.span_id):
                total, path = solve(child)
                if total > best_total:
                    best_total, best_path = total, path
            result = (span.duration_ns + best_total, [span] + best_path)
            memo[span.span_id] = result
            return result

        top: Tuple[float, List[Span]] = (-1.0, [])
        for root in sorted(roots, key=lambda r: r.span_id):
            total, path = solve(root)
            if total > top[0]:
                top = (total, path)
        return top[1]

    def critical_path_summary(self) -> str:
        """Terminal-friendly rendering of :meth:`critical_path`."""
        path = self.critical_path()
        if not path:
            return "(no spans recorded)"
        total = sum(s.duration_ns for s in path)
        lines = [f"critical path: {len(path)} spans, {total:,.1f} ns"]
        for depth, s in enumerate(path):
            where = f"node{s.node}" if s.node >= 0 else "rack"
            lines.append(
                f"{'  ' * depth}{s.name} [{where}] "
                f"start={s.start_ns:,.1f} dur={s.duration_ns:,.1f}"
            )
        return "\n".join(lines)

    # -- internals -------------------------------------------------------------

    @staticmethod
    def _pid(node: int) -> int:
        return node if node >= 0 else 0

    def _by_id(self) -> Dict[int, Span]:
        return {s.span_id: s for s in self.spans}

    def _root_of(self) -> Dict[int, int]:
        by_id = self._by_id()
        roots: Dict[int, int] = {}

        def resolve(span: Span) -> int:
            cached = roots.get(span.span_id)
            if cached is not None:
                return cached
            if span.parent_id is None or span.parent_id not in by_id:
                root = span.span_id
            else:
                root = resolve(by_id[span.parent_id])
            roots[span.span_id] = root
            return root

        for span in self.spans:
            resolve(span)
        return roots

    def _paths(self) -> Dict[int, Tuple[str, ...]]:
        by_id = self._by_id()
        paths: Dict[int, Tuple[str, ...]] = {}

        def resolve(span: Span) -> Tuple[str, ...]:
            cached = paths.get(span.span_id)
            if cached is not None:
                return cached
            if span.parent_id is None or span.parent_id not in by_id:
                path: Tuple[str, ...] = (span.name,)
            else:
                path = resolve(by_id[span.parent_id]) + (span.name,)
            paths[span.span_id] = path
            return path

        for span in self.spans:
            resolve(span)
        return paths


# -- trace_event schema validation (CI lane + tests) ----------------------------

_VALID_PHASES = {"X", "B", "E", "M", "i", "I", "C", "b", "e", "n", "s", "t", "f"}


def validate_chrome_trace(trace: dict) -> int:
    """Validate a Chrome ``trace_event`` JSON object; returns event count.

    Checks the JSON Object Format contract the viewers rely on: a
    ``traceEvents`` list of dict events, each with a string ``name``, a
    known ``ph``, integer ``pid``/``tid``, and (for non-metadata events)
    a non-negative numeric ``ts``; complete events additionally need a
    non-negative ``dur``.  Raises ``ValueError`` on the first violation.
    """
    if not isinstance(trace, dict):
        raise ValueError("trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("trace.traceEvents must be a list")
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            raise ValueError(f"traceEvents[{i}] is not an object")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            raise ValueError(f"traceEvents[{i}].name missing or empty")
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            raise ValueError(f"traceEvents[{i}].ph {ph!r} is not a known phase")
        for field_name in ("pid", "tid"):
            if not isinstance(ev.get(field_name), int):
                raise ValueError(f"traceEvents[{i}].{field_name} must be an int")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                raise ValueError(f"traceEvents[{i}].ts must be a number >= 0")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(f"traceEvents[{i}].dur must be a number >= 0")
    return len(events)
