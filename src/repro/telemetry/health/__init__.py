"""Active health: windowed SLOs, burn-rate alerts, anomaly detection,
and a crash flight recorder over the rack's passive telemetry.

The passive layer (:mod:`repro.telemetry`) records what happened; this
package closes the loop — it decides when what happened is *bad*
(:mod:`.slo`), when it is *about to get worse* (:mod:`.anomaly`), feeds
those calls into the self-healing pipeline's failure predictor so pages
are evacuated before they kill a workload, and keeps a bounded black box
(:mod:`.recorder`) that dumps on node crash, UE storm, or invariant
failure for ``python -m repro.telemetry.health postmortem``.

Everything is simulated-time driven and observation-only: a
:meth:`HealthEngine.tick` never advances a clock, so enabling health
changes no golden latency by even one nanosecond.
"""

from .anomaly import (
    Anomaly,
    AnomalyDetector,
    CeSlopeDetector,
    RepairStreakDetector,
    ScrubTrendDetector,
    default_detectors,
)
from .engine import HealthEngine
from .postmortem import render_postmortem
from .recorder import FLIGHT_SCHEMA, FlightRecorder, load_dump
from .slo import (
    Alert,
    Objective,
    SLOEngine,
    alert_id,
    default_objectives,
    scope_label,
)
from .windows import WindowAggregator, WindowFrame, WindowHist

__all__ = [
    "Anomaly",
    "AnomalyDetector",
    "CeSlopeDetector",
    "RepairStreakDetector",
    "ScrubTrendDetector",
    "default_detectors",
    "HealthEngine",
    "render_postmortem",
    "FLIGHT_SCHEMA",
    "FlightRecorder",
    "load_dump",
    "Alert",
    "Objective",
    "SLOEngine",
    "alert_id",
    "default_objectives",
    "scope_label",
    "WindowAggregator",
    "WindowFrame",
    "WindowHist",
]
