"""The health engine: windows -> SLO burn -> anomalies -> flight recorder.

One :class:`HealthEngine` owns the whole active-observability loop for a
rack.  ``tick(now_ns)`` is the only heartbeat: it closes elapsed metric
windows, evaluates every SLO's burn rate, runs the anomaly detectors,
feeds detections to the failure predictor (so the scrubber evacuates
suspect pages while they are still readable), folds fault-box recovery
incidents into the record, and arms the flight recorder's dump triggers.

The engine *observes* — a tick never advances a simulated clock, so
golden latencies are bit-identical with health enabled.  The *actions*
it provokes (predictor-driven evacuation) run inside the existing
repair/scrub pipeline and are charged there, exactly as if an operator
had reacted to the page.

Dump triggers:

* **node crash** — installed via :meth:`RackMachine.on_crash`;
* **UE storm** — a single frame whose rack-wide UE delta reaches
  ``ue_storm_dump`` (latched: one dump per storm, re-armed by a calm frame);
* **invariant failure** — the chaos runner reports violations here.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Tuple, Union

from .. import TELEMETRY
from ..registry import MetricsRegistry
from .anomaly import Anomaly, AnomalyDetector, default_detectors
from .recorder import FlightRecorder
from .slo import Alert, Objective, SLOEngine, scope_label
from .windows import WindowAggregator, WindowFrame

_REL = "reliability"
_PAGE = 4096


class HealthEngine:
    """Continuous health tracking for one rack machine."""

    def __init__(
        self,
        machine,
        *,
        registry: Optional[MetricsRegistry] = None,
        window_ns: float = 1e6,
        objectives: Optional[Tuple[Objective, ...]] = None,
        detectors: Optional[List[AnomalyDetector]] = None,
        monitor=None,
        predictor=None,
        recovery=None,
        recorder: Optional[FlightRecorder] = None,
        dump_path: Optional[Union[str, pathlib.Path]] = None,
        ue_storm_dump: float = 4.0,
        boost_pages: int = 8,
    ) -> None:
        self.machine = machine
        self.registry = registry if registry is not None else TELEMETRY.registry
        self.windows = WindowAggregator(self.registry, window_ns=window_ns)
        self.slo = SLOEngine(objectives)
        self.detectors: List[AnomalyDetector] = (
            detectors if detectors is not None else default_detectors()
        )
        self.monitor = monitor
        self.predictor = predictor
        self.recovery = recovery
        self.recorder = recorder if recorder is not None else FlightRecorder()
        self.dump_path = pathlib.Path(dump_path) if dump_path is not None else None
        self.ue_storm_dump = ue_storm_dump
        self.boost_pages = boost_pages
        #: every snapshot taken, in trigger order (reason, snapshot dict).
        self.dumps: List[dict] = []
        #: pages handed to the predictor, page addr -> cause.
        self.boosted: Dict[int, str] = {}
        self._storm_armed = True
        self._seen_incidents = 0
        self._installed = False

    # -- wiring ----------------------------------------------------------------

    def install(self) -> "HealthEngine":
        """Register the node-crash dump trigger on the machine."""
        if not self._installed:
            self.machine.on_crash(self._on_node_crash)
            self._installed = True
        return self

    # -- the heartbeat ---------------------------------------------------------

    def tick(self, now_ns: Optional[float] = None) -> List[str]:
        """Advance the health loop to ``now_ns`` (default: rack max time).

        Returns deterministic one-line descriptions of every state
        transition this tick produced (alerts fired/resolved, anomalies,
        predictor boosts, incidents, dumps) — the chaos runner journals
        them verbatim.
        """
        if now_ns is None:
            now_ns = self.machine.max_time()
        frame = self.windows.tick(now_ns)
        if frame is None:
            return []
        lines: List[str] = []
        self.recorder.record_frame(frame)

        for alert in self.slo.evaluate(frame):
            self.recorder.record_alert(alert)
            if alert.state == "firing":
                lines.append(
                    f"health alert=firing id={alert.alert_id} objective={alert.objective} "
                    f"scope={alert.scope} fast={alert.fast_burn:.2f} slow={alert.slow_burn:.2f}"
                )
            else:
                lines.append(
                    f"health alert=resolved id={alert.alert_id} "
                    f"objective={alert.objective} scope={alert.scope}"
                )

        for detector in self.detectors:
            anomaly = detector.observe(frame)
            if anomaly is not None:
                self.recorder.record_anomaly(anomaly)
                lines.append(
                    f"health anomaly={anomaly.detector} scope={anomaly.scope} "
                    f"severity={anomaly.severity:.2f}"
                )
                lines.extend(self._feed_predictor(frame, cause=anomaly.detector))

        # a firing UE/CE burn alert keeps marking the culprit pages at
        # risk until it resolves: evacuation is idempotent per page
        for (objective, _node), _alert in sorted(self.slo.active.items()):
            if objective in ("ue.rate", "ce.rate"):
                lines.extend(self._feed_predictor(frame, cause=objective))
                break

        lines.extend(self._drain_incidents())

        ue_delta = frame.delta_total(_REL, "fault.ue")
        if ue_delta >= self.ue_storm_dump and self._storm_armed:
            self._storm_armed = False
            lines.append(self._dump("ue_storm", frame.end_ns))
        elif ue_delta == 0:
            self._storm_armed = True
        return lines

    # -- prediction feed -------------------------------------------------------

    def _feed_predictor(self, frame: WindowFrame, cause: str) -> List[str]:
        """Mark the frame's fault-dense pages at risk with the predictor.

        The boost lifts the page's EWMA score above the evacuation
        threshold with enough margin to survive one decay, so the next
        scrub step moves it via the existing repair pipeline.
        """
        predictor = self.predictor
        if predictor is None:
            return []
        pages = self._suspect_pages(frame)
        fresh = [p for p in pages if p not in self.boosted]
        if not fresh:
            return []
        margin = predictor.threshold / max(1e-9, 1.0 - predictor.alpha) * 1.25
        for page in fresh[: self.boost_pages]:
            predictor.boost_page(page, margin)
            self.boosted[page] = cause
        boosted = fresh[: self.boost_pages]
        self.recorder.record_boost(
            {"t_ns": frame.end_ns, "cause": cause, "pages": list(boosted)}
        )
        return [
            "health boost cause=" + cause + " pages=" + ",".join(f"{p:#x}" for p in boosted)
        ]

    def _suspect_pages(self, frame: WindowFrame) -> List[int]:
        """Global pages implicated by this frame's CE/UE events, worst first."""
        from ...rack.faults import FaultKind  # late import: faults imports telemetry

        counts: Dict[int, int] = {}
        log = self.machine.faults.log
        for kind, weight in ((FaultKind.UNCORRECTABLE, 4), (FaultKind.CORRECTABLE, 1)):
            for event in log.events(kind, since_ns=frame.start_ns):
                if event.time_ns >= frame.end_ns or event.addr is None:
                    continue
                page = event.addr & ~(_PAGE - 1)
                if self.machine.is_global_addr(page):
                    counts[page] = counts.get(page, 0) + weight
        if self.monitor is not None:
            for page, n in self.monitor.ce_count_by_page(frame.end_ns).items():
                if self.machine.is_global_addr(page):
                    counts[page] = counts.get(page, 0) + n
        return [page for page, _ in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))]

    # -- fault-box incidents ---------------------------------------------------

    def _drain_incidents(self) -> List[str]:
        if self.recovery is None:
            return []
        lines = []
        incidents = self.recovery.incidents
        for report in incidents[self._seen_incidents :]:
            entry = {
                "kind": report.event.kind.value,
                "at_ns": report.event.time_ns,
                "blast_radius": report.blast_radius_boxes,
                "total_boxes": report.total_boxes,
                "recoveries": [
                    {
                        "box_id": r.box_id,
                        "box": r.box_name,
                        "mode": r.mode.name,
                        "pages": r.pages_restored,
                        "duration_ns": r.duration_ns,
                    }
                    for r in report.recoveries
                ],
            }
            self.recorder.record_incident(entry)
            boxes = ",".join(str(r.box_id) for r in report.recoveries) or "-"
            lines.append(
                f"health incident kind={entry['kind']} blast={entry['blast_radius']}"
                f"/{entry['total_boxes']} boxes={boxes}"
            )
        self._seen_incidents = len(incidents)
        return lines

    # -- dump triggers ---------------------------------------------------------

    def _on_node_crash(self, node_id: int, now_ns: float) -> None:
        self._dump(f"node_crash:{node_id}", now_ns)

    def invariant_failed(self, violation: str, now_ns: Optional[float] = None) -> str:
        """Chaos-runner hook: an invariant was violated — snapshot now."""
        if now_ns is None:
            now_ns = self.machine.max_time()
        return self._dump(f"invariant:{violation}", now_ns)

    def _dump(self, reason: str, now_ns: float) -> str:
        trace = TELEMETRY.trace if TELEMETRY.tracing else None
        snapshot = self.recorder.snapshot(
            reason, now_ns, machine=self.machine, trace=trace
        )
        self.dumps.append(snapshot)
        if self.dump_path is not None:
            self.recorder.dump(
                self.dump_path, reason, now_ns, machine=self.machine, trace=trace
            )
        return f"health dump reason={reason} windows={len(snapshot['windows'])}"

    # -- queries (chaos invariants, tests) -------------------------------------

    @property
    def alerts(self) -> List[Alert]:
        return self.slo.alerts

    @property
    def anomalies(self) -> List[Anomaly]:
        return list(self.recorder.anomalies)

    def alerts_fired(self) -> List[str]:
        return self.slo.fired_objectives()

    def alerts_resolved(self) -> List[str]:
        return self.slo.resolved_objectives()

    def scope_label(self, node: int) -> str:
        return scope_label(node)
