"""Declarative service-level objectives with burn-rate alerting.

An :class:`Objective` names what "good" means for one signal — a hit
ratio, a latency ceiling, an event-rate budget — and how aggressively
to page on budget burn.  The :class:`SLOEngine` folds every closed
:class:`~repro.telemetry.health.windows.WindowFrame` into per-scope burn
histories and runs the classic multi-window burn-rate rule: an alert
*fires* when both the fast (short) and slow (long) window averages
exceed their thresholds, and *resolves* once both drop back below.

Scopes: every objective is evaluated rack-wide (counters summed across
nodes); objectives with ``per_node=True`` additionally get one scope per
observing node.  Alert identifiers are deterministic — a digest of
``(objective, scope, fired window index)`` — so two same-seed runs fire
byte-identical alerts.

Three objective kinds:

* ``ratio``   — ``good`` / (``good`` + ``bad``) counters; the error
  fraction per window is the bad share, the budget is ``1 - target``.
* ``latency`` — a histogram; the error fraction is the share of window
  samples at or above ``threshold_ns``, budget is ``1 - target``.
* ``rate``    — a counter; burn is events-per-window over
  ``budget_per_window`` directly (no target fraction).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from hashlib import sha256
from itertools import islice
from typing import Deque, Dict, List, Optional, Tuple

from ..registry import RACK_WIDE
from .windows import WindowFrame

KINDS = ("ratio", "latency", "rate")


def scope_label(node: int) -> str:
    return "rack" if node == RACK_WIDE else f"node{node}"


@dataclass(frozen=True)
class Objective:
    """One declarative SLO."""

    name: str
    kind: str
    subsystem: str
    #: ``ratio``: the success / failure counters.
    good: str = ""
    bad: str = ""
    #: ``latency``: histogram name; ``rate``: counter name.
    metric: str = ""
    #: ``ratio`` / ``latency``: the good-fraction target (budget = 1 - target).
    target: float = 0.999
    #: ``latency``: samples at/above this are budget burn.
    threshold_ns: float = 0.0
    #: ``rate``: allowed events per window (burn = observed / budget).
    budget_per_window: float = 1.0
    per_node: bool = True
    #: Burn-rate windows (in closed frames) and thresholds.
    fast_windows: int = 1
    slow_windows: int = 6
    fast_burn: float = 14.4
    slow_burn: float = 6.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown objective kind {self.kind!r}; know {KINDS}")
        if self.kind == "ratio" and not (self.good and self.bad):
            raise ValueError(f"ratio objective {self.name!r} needs good and bad counters")
        if self.kind in ("latency", "rate") and not self.metric:
            raise ValueError(f"{self.kind} objective {self.name!r} needs a metric")
        if self.kind in ("ratio", "latency") and not 0.0 < self.target < 1.0:
            raise ValueError(f"objective {self.name!r} target must be in (0, 1)")
        if self.kind == "rate" and self.budget_per_window <= 0:
            raise ValueError(f"objective {self.name!r} budget_per_window must be positive")

    @property
    def budget(self) -> float:
        """Error budget as a fraction (ratio/latency kinds)."""
        return 1.0 - self.target


@dataclass
class Alert:
    """One burn-rate alert through its lifecycle."""

    alert_id: str
    objective: str
    node: int
    fired_window: int
    fired_ns: float
    fast_burn: float
    slow_burn: float
    state: str = "firing"
    resolved_window: Optional[int] = None
    resolved_ns: Optional[float] = None

    @property
    def scope(self) -> str:
        return scope_label(self.node)

    def to_dict(self) -> dict:
        return {
            "alert_id": self.alert_id,
            "objective": self.objective,
            "node": self.node,
            "fired_window": self.fired_window,
            "fired_ns": self.fired_ns,
            "fast_burn": self.fast_burn,
            "slow_burn": self.slow_burn,
            "state": self.state,
            "resolved_window": self.resolved_window,
            "resolved_ns": self.resolved_ns,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Alert":
        return cls(**data)


def alert_id(objective: str, node: int, fired_window: int) -> str:
    """Deterministic alert identity: same inputs, same id, every run."""
    return sha256(f"{objective}|{node}|{fired_window}".encode("utf-8")).hexdigest()[:12]


def default_objectives() -> Tuple[Objective, ...]:
    """The rack's stock SLO set: the headline dashboard panels, as alerts."""
    return (
        Objective(
            name="cache.hit_ratio", kind="ratio", subsystem="rack.machine",
            good="cache.hit", bad="cache.miss", target=0.90,
        ),
        Objective(
            name="tlb.hit_ratio", kind="ratio", subsystem="core.memory",
            good="tlb.hit", bad="tlb.miss", target=0.90,
        ),
        Objective(
            name="page_cache.hit_ratio", kind="ratio", subsystem="core.fs",
            good="page_cache.hit", bad="page_cache.miss", target=0.90,
        ),
        Objective(
            name="rpc.p99", kind="latency", subsystem="core.ipc",
            metric="rpc.migration_ns", target=0.99, threshold_ns=1e6,
        ),
        # rate thresholds assume the zero-padded slow mean: a burst must
        # carry slow_burn * slow_windows budgets of events to page, so a
        # lone CE/UE never does and a storm always does
        Objective(
            name="ce.rate", kind="rate", subsystem="reliability",
            metric="fault.ce", budget_per_window=2.0,
            fast_burn=3.0, slow_burn=1.0,
        ),
        Objective(
            name="ue.rate", kind="rate", subsystem="reliability",
            metric="fault.ue", budget_per_window=0.5,
            fast_burn=2.0, slow_burn=1.0,
        ),
        Objective(
            name="repair.fail_rate", kind="rate", subsystem="reliability",
            metric="repair.fail", budget_per_window=0.5,
            fast_burn=2.0, slow_burn=0.5,
        ),
    )


class SLOEngine:
    """Evaluates objectives against closed window frames."""

    def __init__(self, objectives: Optional[Tuple[Objective, ...]] = None) -> None:
        self.objectives: Tuple[Objective, ...] = (
            tuple(objectives) if objectives is not None else default_objectives()
        )
        names = [o.name for o in self.objectives]
        if len(names) != len(set(names)):
            raise ValueError(f"duplicate objective names: {sorted(names)}")
        #: (objective, node) -> recent burn samples, newest last.
        self._history: Dict[Tuple[str, int], Deque[float]] = {}
        #: (objective, node) -> the currently firing alert.
        self.active: Dict[Tuple[str, int], Alert] = {}
        #: every alert ever fired, in fire order.
        self.alerts: List[Alert] = []

    # -- evaluation ------------------------------------------------------------

    def evaluate(self, frame: WindowFrame) -> List[Alert]:
        """Fold one frame in; returns alerts that changed state."""
        changed: List[Alert] = []
        for obj in self.objectives:
            samples = self._burn_samples(obj, frame)
            for node in sorted(samples):
                key = (obj.name, node)
                history = self._history.get(key)
                if history is None:
                    history = self._history[key] = deque(maxlen=max(obj.slow_windows, obj.fast_windows))
                history.append(samples[node])
                changed.extend(self._transition(obj, node, history, frame))
        return changed

    def _burn_samples(self, obj: Objective, frame: WindowFrame) -> Dict[int, float]:
        """Burn sample per scope node for this frame (RACK_WIDE = aggregate).

        Scopes with no traffic this frame contribute no ratio/latency
        sample (no information) but always contribute a zero rate sample
        once tracked, so rate alerts resolve when the storm passes.
        """
        samples: Dict[int, float] = {}
        if obj.kind == "ratio":
            good = frame.per_node(obj.subsystem, obj.good)
            bad = frame.per_node(obj.subsystem, obj.bad)
            nodes = set(good) | set(bad)
            for node in nodes:
                g, b = good.get(node, 0.0), bad.get(node, 0.0)
                if g + b > 0 and node != RACK_WIDE and obj.per_node:
                    samples[node] = (b / (g + b)) / obj.budget
            g, b = sum(good.values()), sum(bad.values())
            if g + b > 0:
                samples[RACK_WIDE] = (b / (g + b)) / obj.budget
        elif obj.kind == "latency":
            if obj.per_node:
                for (node, sub, name), hist in frame.hists.items():
                    if sub != obj.subsystem or name != obj.metric or node == RACK_WIDE:
                        continue
                    if hist.count:
                        samples[node] = hist.fraction_above(obj.threshold_ns) / obj.budget
            merged = frame.hist_merged(obj.subsystem, obj.metric)
            if merged is not None and merged.count:
                samples[RACK_WIDE] = merged.fraction_above(obj.threshold_ns) / obj.budget
        else:  # rate
            per_node = frame.per_node(obj.subsystem, obj.metric)
            if per_node:
                # a scope starts being tracked on its first nonzero delta;
                # a calm run never pays for idle rate objectives
                if obj.per_node:
                    for node, delta in per_node.items():
                        if node != RACK_WIDE:
                            samples[node] = (delta / frame.windows) / obj.budget_per_window
                samples[RACK_WIDE] = (
                    sum(per_node.values()) / frame.windows
                ) / obj.budget_per_window
            # zero-fill every scope already tracked so bursts decay to rest
            for name, node in self._history:
                if name == obj.name and node not in samples:
                    samples[node] = 0.0
        return samples

    def _transition(
        self, obj: Objective, node: int, history: Deque[float], frame: WindowFrame
    ) -> List[Alert]:
        fast = _tail_mean(history, obj.fast_windows)
        slow = _tail_mean(history, obj.slow_windows)
        key = (obj.name, node)
        active = self.active.get(key)
        end_window = frame.index + frame.windows
        if active is None:
            if fast >= obj.fast_burn and slow >= obj.slow_burn:
                alert = Alert(
                    alert_id=alert_id(obj.name, node, end_window),
                    objective=obj.name,
                    node=node,
                    fired_window=end_window,
                    fired_ns=frame.end_ns,
                    fast_burn=fast,
                    slow_burn=slow,
                )
                self.active[key] = alert
                self.alerts.append(alert)
                return [alert]
        elif fast < obj.fast_burn and slow < obj.slow_burn:
            active.state = "resolved"
            active.resolved_window = end_window
            active.resolved_ns = frame.end_ns
            del self.active[key]
            return [active]
        return []

    # -- queries ---------------------------------------------------------------

    def fired_objectives(self) -> List[str]:
        """Distinct objective names that have fired, in first-fire order."""
        seen: List[str] = []
        for alert in self.alerts:
            if alert.objective not in seen:
                seen.append(alert.objective)
        return seen

    def resolved_objectives(self) -> List[str]:
        """Objectives that fired and have no still-firing alert left."""
        firing = {a.objective for a in self.active.values()}
        return [name for name in self.fired_objectives() if name not in firing]

    def burn(self, objective: str, node: int = RACK_WIDE) -> Tuple[float, float]:
        """Current (fast, slow) burn averages for one scope."""
        obj = next((o for o in self.objectives if o.name == objective), None)
        if obj is None:
            raise KeyError(f"no objective named {objective!r}")
        history = self._history.get((objective, node))
        if not history:
            return 0.0, 0.0
        return _tail_mean(history, obj.fast_windows), _tail_mean(history, obj.slow_windows)


def _tail_mean(history: Deque[float], n: int) -> float:
    """Mean of the last ``n`` burn samples, zero-padding missing windows.

    A scope with a short history (it just appeared, or the run just
    started) must not page off one blip: absent windows carry no burn,
    so the divisor is always ``n`` — the slow average genuinely needs
    ``n`` windows of evidence to cross its threshold.
    """
    if n <= 0:
        return 0.0
    return sum(islice(reversed(history), n)) / n
