"""Trend anomaly detectors over window frames.

Burn-rate alerts catch budgets already on fire; the detectors here catch
the *approach* — the rising correctable-error slope that field studies
say precedes an uncorrectable error, the scrubber finding more latent
poison per patrol, repairs starting to fail in streaks.  Detections are
handed to the failure predictor so evacuation starts while the data is
still readable (§3.2's predict-then-prevent loop).

Detectors are pure functions of the frame history: deterministic,
clock-free, and cheap (a handful of comparisons per closed window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, List, Optional

from collections import deque

from .slo import scope_label
from .windows import WindowFrame

_REL = "reliability"


@dataclass
class Anomaly:
    """One detection: a trend that predicts trouble."""

    detector: str
    node: int
    window: int
    at_ns: float
    severity: float
    detail: str = ""

    @property
    def scope(self) -> str:
        return scope_label(self.node)

    def to_dict(self) -> dict:
        return {
            "detector": self.detector,
            "node": self.node,
            "window": self.window,
            "at_ns": self.at_ns,
            "severity": self.severity,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Anomaly":
        return cls(**data)


class AnomalyDetector:
    """Interface: fold one closed frame, maybe emit an anomaly."""

    name = "abstract"

    def observe(self, frame: WindowFrame) -> Optional[Anomaly]:
        raise NotImplementedError


class CeSlopeDetector(AnomalyDetector):
    """Rack-wide CE rate rising monotonically across recent windows.

    A single storm window is the SLO engine's business; *sustained
    growth* window over window is the predictor's cue that a device is
    degrading.  Fires when the last ``streak`` per-window CE rates are
    strictly increasing and the newest is at least ``min_rate``.
    """

    name = "ce_slope"

    def __init__(self, streak: int = 3, min_rate: float = 2.0) -> None:
        self.streak = streak
        self.min_rate = min_rate
        self._rates: Deque[float] = deque(maxlen=streak)

    def observe(self, frame: WindowFrame) -> Optional[Anomaly]:
        rate = frame.rate_total(_REL, "fault.ce")
        self._rates.append(rate)
        if len(self._rates) < self.streak or rate < self.min_rate:
            return None
        rates = list(self._rates)
        if all(b > a for a, b in zip(rates, rates[1:])):
            slope = (rates[-1] - rates[0]) / (self.streak - 1)
            return Anomaly(
                detector=self.name,
                node=-1,
                window=frame.index + frame.windows,
                at_ns=frame.end_ns,
                severity=slope,
                detail=f"ce/window {rates[0]:.1f}->{rates[-1]:.1f} over {self.streak} windows",
            )
        return None


class ScrubTrendDetector(AnomalyDetector):
    """The patrol scrubber is finding more latent poison per window.

    Latent-fault discovery should be flat noise on a healthy rack; a
    growing trend means poison is being created faster than consumers
    touch it — exactly the silent-degradation mode partially coherent
    memory papers warn about.
    """

    name = "scrub_latent_trend"

    def __init__(self, streak: int = 2, min_pages: float = 1.0) -> None:
        self.streak = streak
        self.min_pages = min_pages
        self._rates: Deque[float] = deque(maxlen=streak + 1)

    def observe(self, frame: WindowFrame) -> Optional[Anomaly]:
        rate = frame.rate_total(_REL, "scrub.latent_pages")
        self._rates.append(rate)
        if len(self._rates) < self.streak + 1 or rate < self.min_pages:
            return None
        rates = list(self._rates)
        if all(b >= a for a, b in zip(rates, rates[1:])) and rates[-1] > rates[0]:
            return Anomaly(
                detector=self.name,
                node=-1,
                window=frame.index + frame.windows,
                at_ns=frame.end_ns,
                severity=rates[-1],
                detail=f"latent pages/window {rates[0]:.1f}->{rates[-1]:.1f}",
            )
        return None


class RepairStreakDetector(AnomalyDetector):
    """Consecutive windows where repairs failed and none succeeded.

    One failed repair is bad luck (the redundancy source was itself
    hit); a streak means the redundancy tier is exhausted and the next
    UE will surface to the application.
    """

    name = "repair_failure_streak"

    def __init__(self, streak: int = 2) -> None:
        self.streak = streak
        self._current = 0

    def observe(self, frame: WindowFrame) -> Optional[Anomaly]:
        failed = frame.delta_total(_REL, "repair.fail")
        succeeded = frame.delta_total(_REL, "repair.ok")
        if failed > 0 and succeeded == 0:
            self._current += 1
        elif succeeded > 0 or failed == 0:
            self._current = 0
        if self._current >= self.streak:
            return Anomaly(
                detector=self.name,
                node=-1,
                window=frame.index + frame.windows,
                at_ns=frame.end_ns,
                severity=float(self._current),
                detail=f"{self._current} consecutive windows of failed repairs",
            )
        return None


def default_detectors() -> List[AnomalyDetector]:
    return [CeSlopeDetector(), ScrubTrendDetector(), RepairStreakDetector()]
