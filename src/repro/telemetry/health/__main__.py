"""CLI: ``python -m repro.telemetry.health postmortem dump.json``."""

from __future__ import annotations

import argparse
import sys

from .postmortem import render_postmortem
from .recorder import load_dump


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.health",
        description="Inspect flight-recorder dumps.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    pm = sub.add_parser("postmortem", help="render a dump as a degradation timeline")
    pm.add_argument("dump", help="path to a flight-recorder JSON dump")
    args = parser.parse_args(argv)

    if args.command == "postmortem":
        try:
            data = load_dump(args.dump)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        try:
            print(render_postmortem(data))
        except BrokenPipeError:  # |head and friends
            return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
