"""Render a flight-recorder dump as a human-readable degradation timeline.

The dump is a black box: window frames, alert transitions, anomalies,
incidents, span and fault-log tails.  The postmortem view merges all of
it into one chronological story — "CE rate started climbing at 2.1 ms,
the burn alert fired at 2.4 ms, evacuation began, the node crashed at
3.0 ms" — which is what an operator actually wants after a crash.

Pure string building over the dump dict; no simulator imports, so the
CLI works on a dump file alone.
"""

from __future__ import annotations

from typing import Dict, List

from .recorder import ACCEPTED_SCHEMAS

_REL = "reliability"


def _fmt_ns(ns: float) -> str:
    """Fixed-width simulated timestamp, microseconds with ns precision."""
    return f"{ns / 1000.0:12.3f}us"


def _scope(node: int) -> str:
    return "rack" if node == -1 else f"node{node}"


def _window_counter(frame: dict, subsystem: str, name: str) -> float:
    return sum(
        value
        for f_node, f_sub, f_name, value in frame.get("counters", [])
        if f_sub == subsystem and f_name == name
    )


def _window_gauge(frame: dict, subsystem: str, name: str) -> float:
    return sum(
        value
        for f_node, f_sub, f_name, value in frame.get("gauges", [])
        if f_sub == subsystem and f_name == name
    )


def _timeline_events(data: dict) -> List[tuple]:
    """(time_ns, sort_rank, text) for every recorded state change."""
    events: List[tuple] = []
    for alert in data.get("alerts", []):
        if alert.get("event") == "firing":
            events.append(
                (
                    alert["fired_ns"],
                    1,
                    f"ALERT fired    {alert['objective']} [{_scope(alert['node'])}] "
                    f"id={alert['alert_id']} fast={alert['fast_burn']:.2f} "
                    f"slow={alert['slow_burn']:.2f}",
                )
            )
        else:
            events.append(
                (
                    alert.get("resolved_ns") or alert["fired_ns"],
                    2,
                    f"ALERT resolved {alert['objective']} [{_scope(alert['node'])}] "
                    f"id={alert['alert_id']}",
                )
            )
    for anomaly in data.get("anomalies", []):
        events.append(
            (
                anomaly["at_ns"],
                0,
                f"ANOMALY        {anomaly['detector']} [{_scope(anomaly['node'])}] "
                f"severity={anomaly['severity']:.2f} {anomaly.get('detail', '')}".rstrip(),
            )
        )
    for incident in data.get("incidents", []):
        boxes = ",".join(str(r["box_id"]) for r in incident.get("recoveries", [])) or "-"
        events.append(
            (
                incident["at_ns"],
                3,
                f"INCIDENT       kind={incident['kind']} "
                f"blast={incident['blast_radius']}/{incident['total_boxes']} boxes={boxes}",
            )
        )
    for node, tail in sorted(data.get("fault_tail", {}).items()):
        for event in tail:
            if event["kind"] in ("node_crash", "link_down", "link_up"):
                events.append(
                    (
                        event["time_ns"],
                        4,
                        f"FAULT          {event['kind']} [node{node}] "
                        f"{event.get('detail', '')}".rstrip(),
                    )
                )
    for event in data.get("breakers", []):
        events.append(
            (
                event["t_ns"],
                5,
                f"BREAKER        {event['tenant']}@node{event['target']} "
                f"{event['from']}->{event['to']} reason={event['reason']}",
            )
        )
    for boost in data.get("boosts", []):
        pages = ",".join(f"{p:#x}" for p in boost.get("pages", []))
        events.append(
            (
                boost["t_ns"],
                6,
                f"BOOST          cause={boost['cause']} pages={pages}",
            )
        )
    events.append((data["at_ns"], 7, f"DUMP           reason={data['reason']}"))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    return events


def _window_table(data: dict) -> List[str]:
    lines = ["window    span          ce      ue  repair.ok  repair.fail  evac"]
    for frame in data.get("windows", []):
        lines.append(
            f"{frame['index']:>6}  {_fmt_ns(frame['start_ns'])} "
            f"{_window_counter(frame, _REL, 'fault.ce'):>7.0f} "
            f"{_window_counter(frame, _REL, 'fault.ue'):>7.0f} "
            f"{_window_counter(frame, _REL, 'repair.ok'):>10.0f} "
            f"{_window_counter(frame, _REL, 'repair.fail'):>12.0f} "
            f"{_window_gauge(frame, _REL, 'scrub.evacuated'):>5.0f}"
        )
    return lines


def _fault_tail_counts(data: dict) -> List[str]:
    lines = []
    for node, tail in sorted(data.get("fault_tail", {}).items()):
        by_kind: Dict[str, int] = {}
        for event in tail:
            by_kind[event["kind"]] = by_kind.get(event["kind"], 0) + 1
        counts = " ".join(f"{kind}={n}" for kind, n in sorted(by_kind.items()))
        label = "rack" if node == "-1" else f"node{node}"
        lines.append(f"{label:>8}: {len(tail)} recent events ({counts})")
    return lines


def render_postmortem(data: dict) -> str:
    """The full postmortem report for one flight-recorder dump."""
    if data.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(f"not a flight-recorder dump (schema={data.get('schema')!r})")
    out: List[str] = []
    out.append("=" * 72)
    out.append(f"FLIGHT RECORDER POSTMORTEM — {data['reason']}")
    out.append(f"dumped at {_fmt_ns(data['at_ns'])} simulated ({data['schema']})")
    out.append("=" * 72)

    windows = data.get("windows", [])
    out.append("")
    out.append(f"-- windows ({len(windows)} recorded) --")
    out.extend(_window_table(data))

    out.append("")
    events = _timeline_events(data)
    out.append(f"-- degradation timeline ({len(events)} events) --")
    for time_ns, _, text in events:
        out.append(f"{_fmt_ns(time_ns)}  {text}")

    spans = data.get("spans", [])
    if spans:
        out.append("")
        out.append(f"-- span tail ({len(spans)} spans) --")
        for row in spans[-16:]:
            # v1 rows have 5 fields; v2 appends an args dict
            name, node, start_ns, end_ns, parent_id = row[:5]
            args = row[5] if len(row) > 5 else {}
            nested = "  +- " if parent_id is not None else "  "
            suffix = ""
            if args:
                kv = " ".join(f"{k}={args[k]}" for k in sorted(args))
                suffix = f"  {{{kv}}}"
            out.append(
                f"{_fmt_ns(start_ns)}{nested}{name} [node{node}] "
                f"{end_ns - start_ns:.0f}ns{suffix}"
            )

    samples = data.get("resilience", [])
    if samples:
        out.append("")
        out.append(f"-- resilience tail ({len(samples)} samples) --")
        for s in samples[-8:]:
            out.append(
                f"{_fmt_ns(s['t_ns'])}  {s['tenant']}: "
                f"offered={s['offered']} admitted={s['admitted']} "
                f"failed={s['failed']} timed_out={s['timed_out']} "
                f"retries={s['retries']} hedges={s['hedges']} "
                f"failovers={s['failovers']} shed={s['shed']}"
            )

    out.append("")
    out.append("-- fault log tail --")
    tail_lines = _fault_tail_counts(data)
    out.extend(tail_lines if tail_lines else ["  (empty)"])
    out.append("")
    return "\n".join(out)
