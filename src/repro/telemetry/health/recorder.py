"""The crash flight recorder: bounded recent history, dumped on disaster.

Counters tell you *that* the rack degraded; the flight recorder tells
you *in what order*.  It keeps a bounded ring of recent window frames,
alert/anomaly transitions, the tail of the traced spans, and the tail of
each node's fault log.  When a node crashes, a UE storm lands, or a
chaos invariant fails, the whole ring is snapshotted to JSON — the
black box an operator (or ``python -m repro.telemetry.health
postmortem``) reads after the fact.

Snapshots are deterministic: every field is simulated-time data, keys
are sorted, and serialisation uses ``sort_keys`` — two same-seed runs
produce byte-identical dumps.
"""

from __future__ import annotations

import json
import pathlib
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from .anomaly import Anomaly
from .slo import Alert
from .windows import WindowFrame

#: Schema tag for flight-recorder dumps.  ``/2`` adds circuit-breaker
#: transition tails, per-tenant resilience-counter tails, predictor
#: boost records, and span args (the mitigation-side black box the
#: incident scorer reads); ``/3`` adds the attribution-atlas tails —
#: per-link fabric accounting (``atlas_links``, with saturated-byte
#: blame shares and down timestamps) and the hot-page sketch rows
#: (``atlas_pages``) — so the scorer can localise link flaps and
#: congestion culprits; ``/1`` and ``/2`` dumps still load.
FLIGHT_SCHEMA = "repro.telemetry.flightrec/3"

#: Dump schemas :meth:`FlightRecorder.from_snapshot` / :func:`load_dump`
#: accept.  Older dumps simply have empty tails for the newer sections.
ACCEPTED_SCHEMAS = (
    "repro.telemetry.flightrec/1",
    "repro.telemetry.flightrec/2",
    FLIGHT_SCHEMA,
)


class FlightRecorder:
    """Bounded ring buffers of recent health history."""

    def __init__(
        self,
        capacity_windows: int = 64,
        alert_tail: int = 256,
        anomaly_tail: int = 256,
        span_tail: int = 128,
        fault_tail: int = 64,
        breaker_tail: int = 128,
        resilience_tail: int = 256,
        boost_tail: int = 64,
    ) -> None:
        self.capacity_windows = capacity_windows
        self.span_tail = span_tail
        self.fault_tail = fault_tail
        self.frames: Deque[WindowFrame] = deque(maxlen=capacity_windows)
        self.alert_events: Deque[dict] = deque(maxlen=alert_tail)
        self.anomalies: Deque[Anomaly] = deque(maxlen=anomaly_tail)
        self.incidents: Deque[dict] = deque(maxlen=anomaly_tail)
        #: circuit-breaker transitions (tenant/target/from/to/t_ns/reason)
        self.breaker_events: Deque[dict] = deque(maxlen=breaker_tail)
        #: per-tenant resilience counter samples, recorded on change
        self.resilience_samples: Deque[dict] = deque(maxlen=resilience_tail)
        #: predictor boosts (t_ns/cause/pages)
        self.boosts: Deque[dict] = deque(maxlen=boost_tail)
        # populated by from_snapshot so a loaded dump re-snapshots exactly
        self._static_spans: List[list] = []
        self._static_faults: Dict[str, List[dict]] = {}
        self._static_atlas_links: List[dict] = []
        self._static_atlas_pages: List[dict] = []

    # -- recording -------------------------------------------------------------

    def record_frame(self, frame: WindowFrame) -> None:
        self.frames.append(frame)

    def record_alert(self, alert: Alert) -> None:
        """Record one alert *transition* (fire and resolve are two entries)."""
        self.alert_events.append(dict(alert.to_dict(), event=alert.state))

    def record_anomaly(self, anomaly: Anomaly) -> None:
        self.anomalies.append(anomaly)

    def record_incident(self, incident: dict) -> None:
        """A fault-box recovery incident (blast radius + recoveries)."""
        self.incidents.append(incident)

    def record_breaker(self, event: dict) -> None:
        """One circuit-breaker transition (already structured)."""
        self.breaker_events.append(event)

    def record_resilience(self, sample: dict) -> None:
        """One per-tenant resilience-counter sample (taken on change)."""
        self.resilience_samples.append(sample)

    def record_boost(self, boost: dict) -> None:
        """One predictor boost decision (``t_ns``/``cause``/``pages``)."""
        self.boosts.append(boost)

    # -- snapshotting ----------------------------------------------------------

    def snapshot(
        self,
        reason: str,
        now_ns: float,
        machine=None,
        trace=None,
    ) -> dict:
        """The black box as one JSON-ready dict.

        ``machine`` contributes the per-node fault-log tail and ``trace``
        (a :class:`~repro.telemetry.spans.TraceBuffer`) the span tail;
        either may be omitted (a recorder rebuilt by
        :meth:`from_snapshot` replays the tails it was loaded with).
        """
        return {
            "schema": FLIGHT_SCHEMA,
            "reason": reason,
            "at_ns": now_ns,
            "windows": [f.to_dict() for f in self.frames],
            "alerts": list(self.alert_events),
            "anomalies": [a.to_dict() for a in self.anomalies],
            "incidents": list(self.incidents),
            "breakers": list(self.breaker_events),
            "resilience": list(self.resilience_samples),
            "boosts": list(self.boosts),
            "spans": self._span_tail(trace),
            "fault_tail": self._fault_log_tail(machine),
            "atlas_links": self._atlas_link_tail(machine, now_ns),
            "atlas_pages": self._atlas_page_tail(),
        }

    def dump(
        self,
        path: Union[str, pathlib.Path],
        reason: str,
        now_ns: float,
        machine=None,
        trace=None,
    ) -> pathlib.Path:
        path = pathlib.Path(path)
        snap = self.snapshot(reason, now_ns, machine=machine, trace=trace)
        path.write_text(json.dumps(snap, indent=2, sort_keys=True) + "\n")
        return path

    @classmethod
    def from_snapshot(cls, data: dict) -> "FlightRecorder":
        """Rebuild a recorder from a dump (postmortem / round-trip path).

        Accepts every schema in :data:`ACCEPTED_SCHEMAS`; a v1 dump
        loads with empty breaker/resilience/boost tails.
        """
        if data.get("schema") not in ACCEPTED_SCHEMAS:
            raise ValueError(
                f"not a flight-recorder dump (schema={data.get('schema')!r})"
            )
        rec = cls()
        for fdict in data.get("windows", []):
            rec.frames.append(WindowFrame.from_dict(fdict))
        rec.alert_events.extend(data.get("alerts", []))
        for adict in data.get("anomalies", []):
            rec.anomalies.append(Anomaly.from_dict(adict))
        rec.incidents.extend(data.get("incidents", []))
        rec.breaker_events.extend(data.get("breakers", []))
        rec.resilience_samples.extend(data.get("resilience", []))
        rec.boosts.extend(data.get("boosts", []))
        rec._static_spans = list(data.get("spans", []))
        rec._static_faults = dict(data.get("fault_tail", {}))
        rec._static_atlas_links = list(data.get("atlas_links", []))
        rec._static_atlas_pages = list(data.get("atlas_pages", []))
        return rec

    # -- tails -----------------------------------------------------------------

    def _span_tail(self, trace) -> List[list]:
        if trace is None or not getattr(trace, "spans", None):
            return self._static_spans
        tail = trace.spans[-self.span_tail :]
        return [
            [s.name, s.node, s.start_ns, s.end_ns, s.parent_id,
             {k: _jsonable(v) for k, v in s.args}]
            for s in tail
        ]

    def _fault_log_tail(self, machine) -> Dict[str, List[dict]]:
        if machine is None:
            return self._static_faults
        by_node: Dict[str, List[dict]] = {}
        for event in machine.faults.log.events():
            node = event.node_id if event.node_id is not None else -1
            by_node.setdefault(str(node), []).append(
                {
                    "kind": event.kind.value,
                    "time_ns": event.time_ns,
                    "addr": event.addr,
                    "detail": event.detail,
                }
            )
        return {
            node: events[-self.fault_tail :] for node, events in sorted(by_node.items())
        }

    def _atlas_link_tail(self, machine, now_ns: float) -> List[dict]:
        """Per-link fabric accounting at dump time (the atlas link tail).

        Always populated when a machine is given — per-link charging is
        unconditional on the fabric, no atlas needs to be enabled — so
        every v3 dump carries link-level blame raw material.
        """
        fabric = getattr(machine, "fabric", None) if machine is not None else None
        if fabric is None:
            return self._static_atlas_links
        rows: List[dict] = []
        table = fabric.links
        for link in table.links():
            s = table.get(link)
            shares = table.saturated_share(link)
            blame = []
            for vni, share in sorted(shares.items()):
                try:
                    tenant = fabric.vnis.name_of(vni)
                except Exception:
                    tenant = f"vni:{vni}"
                blame.append({"vni": vni, "tenant": tenant, "share": round(share, 6)})
            rows.append(
                {
                    "link": link,
                    "bytes": s.bytes,
                    "requests": s.requests,
                    "utilisation": round(table.utilisation(link, now_ns), 6),
                    "saturated_bytes": s.saturated_bytes,
                    "saturated_windows": s.saturated_windows,
                    "downs": list(s.downs),
                    "blame": blame,
                }
            )
        return rows

    def _atlas_page_tail(self, limit: int = 32) -> List[dict]:
        """Hot-page sketch rows when an atlas is enabled, else the
        static tail a loaded dump carried (empty for v1/v2 dumps)."""
        from .. import TELEMETRY

        atlas = TELEMETRY.atlas
        if atlas is None:
            return self._static_atlas_pages
        return atlas.hot_pages(limit)


def _jsonable(value):
    """Span-arg values coerced to something JSON round-trips exactly."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return str(value)


def load_dump(path: Union[str, pathlib.Path]) -> dict:
    """Read and schema-check a flight-recorder dump file."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") not in ACCEPTED_SCHEMAS:
        raise ValueError(
            f"{path}: not a flight-recorder dump (schema={data.get('schema')!r})"
        )
    return data
