"""Windowed aggregation of the metrics registry.

The PR-4 :class:`~repro.telemetry.registry.MetricsRegistry` is cumulative
— counters only grow, histograms only accumulate.  Health evaluation
needs *rates*: "how many UEs in the last window", "what was p99 this
window".  The :class:`WindowAggregator` rolls the cumulative registry
into fixed simulated-time windows by capturing a monotone baseline at
every window close and emitting the deltas as a :class:`WindowFrame`.

Everything here is pure observation: the aggregator reads the simulated
clock (the caller passes ``now_ns``) and never calls ``clock.advance`` —
closing a window is free in simulated time.  Two runs that record the
same metrics at the same simulated instants produce identical frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..registry import Histogram, MetricKey, MetricsRegistry, N_BUCKETS


@dataclass
class WindowHist:
    """One histogram's delta over a window: count, sum, bucket deltas.

    Exact per-window min/max cannot be recovered from cumulative state,
    so quantiles clamp to the bounds of the occupied delta buckets —
    the same one-power-of-two accuracy the registry histograms give.
    """

    count: int
    total: float
    buckets: List[int]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                return Histogram._bucket_midpoint(idx)
        return Histogram._bucket_midpoint(N_BUCKETS - 1)

    def fraction_above(self, threshold: float) -> float:
        """Fraction of window samples whose bucket lies above ``threshold``.

        A bucket counts as "above" when its lower bound is >= the
        threshold, so the answer is conservative (never over-reports
        violations) and deterministic.
        """
        if not self.count:
            return 0.0
        above = 0
        for idx, n in enumerate(self.buckets):
            if not n:
                continue
            lower = 0.0 if idx == 0 else float(1 << (idx - 1))
            if lower >= threshold:
                above += n
        return above / self.count

    def to_list(self) -> list:
        return [self.count, self.total, {str(i): n for i, n in enumerate(self.buckets) if n}]

    @classmethod
    def from_list(cls, data: list) -> "WindowHist":
        buckets = [0] * N_BUCKETS
        for idx, n in (data[2] or {}).items():
            buckets[int(idx)] = int(n)
        return cls(count=int(data[0]), total=float(data[1]), buckets=buckets)


@dataclass
class WindowFrame:
    """Metric deltas over one closed window span.

    ``index`` is the fixed window grid slot the frame *starts* at
    (``start_ns = index * window_ns``); ``windows`` is how many grid
    slots the frame spans (> 1 when the clock jumped several windows
    between ticks).  Rates are normalised per single window so a long
    frame does not masquerade as a burst.
    """

    index: int
    start_ns: float
    end_ns: float
    windows: int
    counters: Dict[MetricKey, float] = field(default_factory=dict)
    gauges: Dict[MetricKey, float] = field(default_factory=dict)
    hists: Dict[MetricKey, WindowHist] = field(default_factory=dict)

    # -- per-window queries ----------------------------------------------------
    #
    # A closed frame is immutable; the first metric query builds a
    # (subsystem, name) -> {node: delta} index so the SLO engine's seven
    # objectives cost one counter scan per frame, not seven.

    def _by_metric(self) -> Dict[Tuple[str, str], Dict[int, float]]:
        index = getattr(self, "_metric_index", None)
        if index is None:
            index = {}
            for (node, sub, name), value in self.counters.items():
                index.setdefault((sub, name), {})[node] = value
            self._metric_index = index
        return index

    def delta(self, node: int, subsystem: str, name: str) -> float:
        return self.counters.get((node, subsystem, name), 0.0)

    def delta_total(self, subsystem: str, name: str) -> float:
        """Sum of one counter's delta across every node."""
        return sum(self.per_node(subsystem, name).values())

    def rate(self, node: int, subsystem: str, name: str) -> float:
        """Counter delta normalised to events per single window."""
        return self.delta(node, subsystem, name) / self.windows

    def rate_total(self, subsystem: str, name: str) -> float:
        return self.delta_total(subsystem, name) / self.windows

    def per_node(self, subsystem: str, name: str) -> Dict[int, float]:
        """Node -> delta for one counter (shared index dict: treat as read-only)."""
        return self._by_metric().get((subsystem, name), {})

    def hist(self, node: int, subsystem: str, name: str) -> Optional[WindowHist]:
        return self.hists.get((node, subsystem, name))

    def hist_merged(self, subsystem: str, name: str) -> Optional[WindowHist]:
        merged: Optional[WindowHist] = None
        for (n, s, m), h in self.hists.items():
            if s != subsystem or m != name:
                continue
            if merged is None:
                merged = WindowHist(0, 0.0, [0] * N_BUCKETS)
            merged.count += h.count
            merged.total += h.total
            for i, c in enumerate(h.buckets):
                merged.buckets[i] += c
        return merged

    # -- export (flight recorder / postmortem) ---------------------------------

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "windows": self.windows,
            "counters": [[k[0], k[1], k[2], v] for k, v in sorted(self.counters.items())],
            "gauges": [[k[0], k[1], k[2], v] for k, v in sorted(self.gauges.items())],
            "hists": [
                [k[0], k[1], k[2], h.to_list()] for k, h in sorted(self.hists.items())
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "WindowFrame":
        frame = cls(
            index=int(data["index"]),
            start_ns=float(data["start_ns"]),
            end_ns=float(data["end_ns"]),
            windows=int(data["windows"]),
        )
        for node, sub, name, v in data.get("counters", []):
            frame.counters[(node, sub, name)] = v
        for node, sub, name, v in data.get("gauges", []):
            frame.gauges[(node, sub, name)] = v
        for node, sub, name, hlist in data.get("hists", []):
            frame.hists[(node, sub, name)] = WindowHist.from_list(hlist)
        return frame


class WindowAggregator:
    """Rolls a cumulative registry into fixed simulated-time windows.

    ``tick(now_ns)`` is the only entry point: the first call anchors the
    baseline; every later call that finds the clock in a new window
    closes the span since the last close and returns the frame.  Ticks
    within the same window return nothing and cost one division.
    """

    def __init__(self, registry: MetricsRegistry, window_ns: float = 1e6) -> None:
        if window_ns <= 0:
            raise ValueError(f"window_ns must be positive, got {window_ns}")
        self.registry = registry
        self.window_ns = window_ns
        self.frames_closed = 0
        self._open_index: Optional[int] = None
        self._base_counters: Dict[MetricKey, float] = {}
        self._base_hists: Dict[MetricKey, Tuple[int, float, Tuple[int, ...]]] = {}

    def window_index(self, now_ns: float) -> int:
        return int(now_ns // self.window_ns)

    def tick(self, now_ns: float) -> Optional[WindowFrame]:
        """Close the open window span if ``now_ns`` has moved past it."""
        w = self.window_index(now_ns)
        if self._open_index is None:
            self._open_index = w
            self._capture_baseline()
            return None
        if w <= self._open_index:
            return None
        frame = self._close(self._open_index, w)
        self._open_index = w
        self._capture_baseline()
        self.frames_closed += 1
        return frame

    # -- internals -------------------------------------------------------------

    def _capture_baseline(self) -> None:
        reg = self.registry
        self._base_counters = dict(reg.counters)
        self._base_hists = {
            k: (h.count, h.total, tuple(h.buckets)) for k, h in reg.histograms.items()
        }

    def _close(self, start_index: int, end_index: int) -> WindowFrame:
        reg = self.registry
        frame = WindowFrame(
            index=start_index,
            start_ns=start_index * self.window_ns,
            end_ns=end_index * self.window_ns,
            windows=end_index - start_index,
        )
        base = self._base_counters
        for key, value in reg.counters.items():
            delta = value - base.get(key, 0.0)
            if delta:
                frame.counters[key] = delta
        frame.gauges = dict(reg.gauges)
        base_h = self._base_hists
        for key, hist in reg.histograms.items():
            b_count, b_total, b_buckets = base_h.get(key, (0, 0.0, None))
            d_count = hist.count - b_count
            if not d_count:
                continue
            if b_buckets is None:
                buckets = list(hist.buckets)
            else:
                buckets = [n - b_buckets[i] for i, n in enumerate(hist.buckets)]
            frame.hists[key] = WindowHist(d_count, hist.total - b_total, buckets)
        return frame
