"""Render a telemetry dashboard from an exported run.

::

    python -m repro.telemetry run.json              # dashboard snapshot
    python -m repro.telemetry run.json --flame      # + hottest traced paths
    python -m repro.telemetry run.json --trace-out trace.json
                                                    # extract Chrome trace JSON

Runs are produced by :meth:`repro.telemetry.TelemetryState.export_json`
— e.g. ``python examples/redis_rack.py --telemetry run.json`` or a chaos
campaign with tracing enabled.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from . import load_run
from .dashboard import render_dashboard


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry", description=__doc__.splitlines()[0]
    )
    ap.add_argument("run", type=pathlib.Path, help="exported telemetry run JSON")
    ap.add_argument("--flame", action="store_true",
                    help="include the flamegraph-style span summary")
    ap.add_argument("--trace-out", type=pathlib.Path, default=None,
                    help="write the embedded Chrome trace_event JSON here")
    args = ap.parse_args(argv)

    try:
        run = load_run(args.run)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    print(render_dashboard(run, flame=args.flame))

    if args.trace_out is not None:
        trace = run.get("trace")
        if trace is None:
            print("error: run has no trace (enable tracing before exporting)",
                  file=sys.stderr)
            return 2
        args.trace_out.write_text(json.dumps(trace, indent=2) + "\n")
        print(f"\nwrote Chrome trace to {args.trace_out} "
              "(load in chrome://tracing or https://ui.perfetto.dev)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
