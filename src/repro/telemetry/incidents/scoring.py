"""Score one incident from its flight-recorder dump alone.

The scorer is pure dict-walking over a ``repro.telemetry.flightrec/2``
snapshot — no simulator imports — so ``python -m
repro.telemetry.incidents score DUMP.json`` works offline, on a dump
from any run.  Four scores, per the AIOpsLab-style ops loop:

* **MTTD** — injection to the first *correct* SLO alert or anomaly
  (rack-wide, or scoped to a ground-truth node);
* **localization** — precision/recall/F1 of the blame set (scoped
  alerts + anomalies, breaker opens, predictor boost pages, failed
  request-path spans, and — in ``/3`` dumps — the atlas link tail's
  down-stamped links, resolved to their node endpoints) against the
  injected fault sites;
* **MTTM** — injection to the end of the last availability-degraded
  window (0 when mitigation never let availability dip);
* **blast radius** — tenants with lost requests, total requests lost,
  degraded windows.

Ground truth needs no side channel: the fault-log tail in the dump *is*
the injection record (simulated time, node, address per fault), so a
replayed dump scores identically to the live run — byte-identical per
seed.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

_PAGE = 4096

#: fault kinds that constitute an injected incident (repairs and link
#: restorations are consequences, not causes)
GROUND_TRUTH_KINDS = ("ce", "link_down", "node_crash", "ue")

#: tenant-scoped counter names the availability ratio reads
_GOOD = "admitted"
_BAD = "resilience.lost"
_TENANT_PREFIX = "traffic/"


def ground_truth(dump: dict) -> Tuple[Optional[float], Set[str]]:
    """(first injection time, fault sites) from the dump's fault tail.

    Sites are ``node:<id>`` for topology faults (link down, crash) and
    memory faults recorded against a node, plus ``page:<hex>`` for
    memory faults with an address — the two vocabularies the detection
    stack can blame in.
    """
    t0: Optional[float] = None
    sites: Set[str] = set()
    for node_str, tail in dump.get("fault_tail", {}).items():
        node = int(node_str)
        for ev in tail:
            if ev["kind"] not in GROUND_TRUTH_KINDS:
                continue
            t = float(ev["time_ns"])
            t0 = t if t0 is None else min(t0, t)
            if ev["kind"] in ("link_down", "node_crash"):
                if node >= 0:
                    sites.add(f"node:{node}")
            else:  # ue / ce
                if ev.get("addr") is not None:
                    sites.add(f"page:{int(ev['addr']) & ~(_PAGE - 1):#x}")
                if node >= 0:
                    sites.add(f"node:{node}")
    return t0, sites


def blame_set(dump: dict, t0: float) -> Set[str]:
    """Everything the detection/mitigation stack pointed at after ``t0``."""
    blame: Set[str] = set()
    for alert in dump.get("alerts", []):
        if alert.get("event") == "firing" and alert["fired_ns"] >= t0:
            if alert["node"] >= 0:
                blame.add(f"node:{alert['node']}")
    for anomaly in dump.get("anomalies", []):
        if anomaly["at_ns"] >= t0 and anomaly["node"] >= 0:
            blame.add(f"node:{anomaly['node']}")
    for ev in dump.get("breakers", []):
        if ev["to"] == "open" and ev["t_ns"] >= t0:
            blame.add(f"node:{ev['target']}")
    for boost in dump.get("boosts", []):
        if boost["t_ns"] >= t0:
            for page in boost.get("pages", []):
                blame.add(f"page:{int(page):#x}")
    for row in dump.get("spans", []):
        if len(row) < 6:
            continue  # v1 tail: no args, nothing attributable
        name, _node, start_ns, _end_ns, _parent, args = row[:6]
        if start_ns < t0:
            continue
        if name in ("traffic.attempt", "traffic.hedge") and args.get("outcome") == "failed":
            target = args.get("target")
            if target is not None:
                blame.add(f"node:{int(target)}")
    # /3 dumps: the fabric's own per-link ledger stamps the simulated
    # time of every link-down — resolve flapped links to their node
    # endpoints (``link_down`` fault events carry no node id, so this
    # is what localises a severed port)
    for row in dump.get("atlas_links", []):
        if any(down >= t0 for down in row.get("downs", [])):
            for vertex in str(row.get("link", "")).split("|"):
                if vertex.startswith("node:"):
                    blame.add(vertex)
    return blame


def _detection_times(dump: dict, t0: float, truth: Set[str]) -> List[float]:
    """Times of *correct* detections: rack-wide or truth-scoped."""
    times: List[float] = []
    for alert in dump.get("alerts", []):
        if alert.get("event") != "firing" or alert["fired_ns"] < t0:
            continue
        if alert["node"] < 0 or f"node:{alert['node']}" in truth:
            times.append(float(alert["fired_ns"]))
    for anomaly in dump.get("anomalies", []):
        if anomaly["at_ns"] < t0:
            continue
        if anomaly["node"] < 0 or f"node:{anomaly['node']}" in truth:
            times.append(float(anomaly["at_ns"]))
    return times


def _availability_by_window(dump: dict) -> List[Tuple[float, float, float]]:
    """(end_ns, availability, lost) per window frame that saw traffic."""
    rows: List[Tuple[float, float, float]] = []
    for frame in dump.get("windows", []):
        good = bad = 0.0
        for _node, sub, name, value in frame.get("counters", []):
            if not sub.startswith(_TENANT_PREFIX):
                continue
            if name == _GOOD:
                good += value
            elif name == _BAD:
                bad += value
        if good + bad <= 0:
            continue
        rows.append((float(frame["end_ns"]), good / (good + bad), bad))
    return rows


def _blast_radius(dump: dict, t0: float) -> dict:
    tenants: Set[str] = set()
    lost = 0.0
    degraded = 0
    for frame in dump.get("windows", []):
        if float(frame["end_ns"]) <= t0:
            continue
        for _node, sub, name, value in frame.get("counters", []):
            if sub.startswith(_TENANT_PREFIX) and name == _BAD and value > 0:
                tenants.add(sub[len(_TENANT_PREFIX):])
                lost += value
    return {"tenants": sorted(tenants), "requests_lost": lost,
            "degraded_windows": degraded}


def score_dump(
    dump: dict,
    availability_target: float = 0.999,
    scenario: Optional[str] = None,
) -> dict:
    """The full score card for one dump — deterministic, JSON-ready."""
    t0, truth = ground_truth(dump)
    if t0 is None:
        return {
            "scenario": scenario,
            "t0_ns": None,
            "mttd_ns": None,
            "mttm_ns": None,
            "recovered": True,
            "localization": {"precision": None, "recall": None, "f1": None,
                             "blame": [], "truth": []},
            "blast_radius": {"tenants": [], "requests_lost": 0.0,
                             "degraded_windows": 0},
            "availability_target": availability_target,
        }

    detections = _detection_times(dump, t0, truth)
    mttd = min(detections) - t0 if detections else None

    blame = blame_set(dump, t0)
    hits = len(blame & truth)
    precision = hits / len(blame) if blame else 0.0
    recall = hits / len(truth) if truth else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0 else 0.0
    )

    rows = _availability_by_window(dump)
    degraded = [
        (end_ns, avail) for end_ns, avail, _lost in rows
        if end_ns > t0 and avail < availability_target
    ]
    mttm = max(end for end, _ in degraded) - t0 if degraded else 0.0
    post = [(end_ns, avail) for end_ns, avail, _ in rows if end_ns > t0]
    recovered = (not post) or post[-1][1] >= availability_target

    blast = _blast_radius(dump, t0)
    blast["degraded_windows"] = len(degraded)

    return {
        "scenario": scenario,
        "t0_ns": t0,
        "mttd_ns": mttd,
        "mttm_ns": mttm,
        "recovered": recovered,
        "localization": {
            "precision": round(precision, 6),
            "recall": round(recall, 6),
            "f1": round(f1, 6),
            "blame": sorted(blame),
            "truth": sorted(truth),
        },
        "blast_radius": blast,
        "availability_target": availability_target,
    }


def render_score(score: dict) -> str:
    """Terminal one-pager for one score card."""
    loc = score["localization"]
    blast = score["blast_radius"]

    def _ns(value):
        return "n/a" if value is None else f"{value / 1e6:.3f} ms"

    lines = [
        f"== incident score: {score.get('scenario') or '(unnamed)'} ==",
        f"injection t0:      {_ns(score['t0_ns'])}",
        f"MTTD:              {_ns(score['mttd_ns'])}",
        f"MTTM:              {_ns(score['mttm_ns'])}",
        f"recovered:         {score['recovered']}",
        f"localization:      precision={loc['precision']} "
        f"recall={loc['recall']} f1={loc['f1']}",
        f"  truth: {', '.join(loc['truth']) or '-'}",
        f"  blame: {', '.join(loc['blame']) or '-'}",
        f"blast radius:      tenants={','.join(blast['tenants']) or '-'} "
        f"requests_lost={blast['requests_lost']:.0f} "
        f"degraded_windows={blast['degraded_windows']}",
    ]
    return "\n".join(lines)
