"""The incident scenario catalogue: seeded chaos campaigns, scorable.

Each :class:`IncidentScenario` is a frozen value — a named chaos
campaign with its tenants, horizon, and availability target — so the
suite is a table the runner, CLI, benchmark, and tests all read.  Every
scenario follows the same dramaturgy:

1. an *early, health-detectable* signal (UE storm, CE trend, link
   flaps) that gives the detection stack something to fire on — this
   anchors MTTD;
2. a *late node crash* landing while traffic is back on the primary —
   the detection-on arm (machine crash hook wired into the breakers)
   fails over before losing a batch, while the detection-off arm must
   burn a full retry ladder on inline evidence and loses the in-flight
   batch.  This is the mechanism that makes detection-on strictly
   dominate detection-off on MTTM, per scenario, deterministically.

The crash is always placed more than one breaker cooldown (5 ms) after
the last recovery event so the off arm's breaker has re-closed (probe
succeeded) and traffic has returned to the primary before the crash
lands — otherwise the off arm would coast through the crash on the
replica and the arms would tie.

Memory-fault targets are pinned to the top pages of global memory, far
above the tenants' key slabs, so a poisoned page is never on a traffic
batch's data path: the scenario measures the *ops loop*, not a poisoned
read.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ...chaos.schedule import ChaosCampaign, event
from ...rack.params import GLOBAL_BASE
from ...workloads.traffic import TenantSpec
from .. import tenant_subsystem
from ..health.slo import Objective

_PAGE = 4096

#: global-memory size the runner boots rigs with (build_rig default)
GLOBAL_MEM = 1 << 26


def spare_pages(count: int, lane: int = 0) -> Tuple[int, ...]:
    """``count`` page addresses at the top of global memory.

    ``lane`` offsets each scenario into its own block of pages so two
    scenarios' ground-truth sites never collide in tests.
    """
    top = GLOBAL_BASE + GLOBAL_MEM
    base = top - (lane + 1) * 64 * _PAGE
    return tuple(base + i * _PAGE for i in range(count))


def availability_objective(tenant: str, target: float = 0.999) -> Objective:
    """Per-tenant availability SLO: admitted vs lost-by-the-request-path.

    ``resilience.lost`` aggregates every loss class (failed, timed out,
    shed); admission-policy drops are not failures and stay out.  The
    burn thresholds fire within one window of a lost batch (a whole
    batch lost in one window burns hundreds of budgets) and resolve
    after six calm windows.
    """
    return Objective(
        name=f"availability.{tenant}",
        kind="ratio",
        subsystem=tenant_subsystem(tenant),
        good="admitted",
        bad="resilience.lost",
        target=target,
        fast_windows=1,
        slow_windows=6,
        fast_burn=6.0,
        slow_burn=1.0,
    )


@dataclass(frozen=True)
class IncidentScenario:
    """One replayable, scorable incident."""

    name: str
    description: str
    campaign: ChaosCampaign
    tenants: Tuple[TenantSpec, ...]
    horizon_ns: float
    availability_target: float = 0.999
    n_nodes: int = 2
    window_ns: float = 250_000.0
    replica_node: int = 1


def _tenants() -> Tuple[TenantSpec, ...]:
    return (
        TenantSpec(name="web", rate_rps=120_000.0, node=0, n_keys=256,
                   get_ratio=0.9, max_backlog_ns=5e6),
        TenantSpec(name="api", rate_rps=80_000.0, node=0, n_keys=256,
                   get_ratio=0.7, max_backlog_ns=5e6),
    )


def _scenario_ue_storm() -> IncidentScenario:
    pages = spare_pages(8, lane=0)
    return IncidentScenario(
        name="ue-storm",
        description="two UE bursts on spare global pages, then the primary "
                    "crashes; ue.rate must page and the predictor must "
                    "evacuate the poisoned pages before the crash",
        campaign=ChaosCampaign(
            name="ue-storm", seed=101,
            events=(
                event("ue_storm", at_ns=6e6, count=8, targets=pages),
                event("ue_storm", at_ns=8e6, count=8, targets=pages),
                event("node_crash", at_ns=14e6, node=0),
                event("node_restart", at_ns=24e6, node=0),
            ),
        ),
        tenants=_tenants(),
        horizon_ns=30e6,
    )


def _scenario_link_flap() -> IncidentScenario:
    return IncidentScenario(
        name="link-flap",
        description="the primary's fabric port flaps twice, recovers, then "
                    "the node crashes outright; availability burn must fire "
                    "on the flap losses and blame the primary",
        campaign=ChaosCampaign(
            name="link-flap", seed=202,
            events=(
                event("link_down", at_ns=4e6, node=0),
                event("link_up", at_ns=6e6, node=0),
                event("link_down", at_ns=8e6, node=0),
                event("link_up", at_ns=10e6, node=0),
                event("node_crash", at_ns=17e6, node=0),
                event("node_restart", at_ns=26e6, node=0),
            ),
        ),
        tenants=_tenants(),
        horizon_ns=34e6,
    )


def _scenario_crash_cascade() -> IncidentScenario:
    pages = spare_pages(8, lane=1)
    return IncidentScenario(
        name="crash-cascade",
        description="a CE burst on the primary foreshadows two crashes in "
                    "a row; the second lands after the breaker has re-closed",
        campaign=ChaosCampaign(
            name="crash-cascade", seed=303,
            events=(
                event("ce_storm", at_ns=2e6, count=16, node=0, targets=pages),
                event("node_crash", at_ns=5e6, node=0),
                event("node_restart", at_ns=12e6, node=0),
                event("node_crash", at_ns=18e6, node=0),
                event("node_restart", at_ns=26e6, node=0),
            ),
        ),
        tenants=_tenants(),
        horizon_ns=32e6,
    )


def _scenario_ce_slow_leak() -> IncidentScenario:
    pages = spare_pages(4, lane=2)
    return IncidentScenario(
        name="ce-slow-leak",
        description="repeated small CE bursts on the same pages — below the "
                    "fast-burn bar alone, over it as a trend — then the "
                    "primary crashes; ce.rate must fire on the accumulation",
        campaign=ChaosCampaign(
            name="ce-slow-leak", seed=404,
            events=(
                event("ce_storm", at_ns=3.0e6, count=8, node=0, targets=pages),
                event("ce_storm", at_ns=3.5e6, count=8, node=0, targets=pages),
                event("ce_storm", at_ns=4.0e6, count=8, node=0, targets=pages),
                event("ce_storm", at_ns=4.5e6, count=8, node=0, targets=pages),
                event("ce_storm", at_ns=5.0e6, count=8, node=0, targets=pages),
                event("node_crash", at_ns=15e6, node=0),
                event("node_restart", at_ns=24e6, node=0),
            ),
        ),
        tenants=_tenants(),
        horizon_ns=30e6,
    )


def _scenario_breaker_storm() -> IncidentScenario:
    return IncidentScenario(
        name="breaker-storm",
        description="three rapid link flaps churn the breakers through "
                    "open/half-open/closed, then the primary crashes; the "
                    "flight recorder must capture the transition storm",
        campaign=ChaosCampaign(
            name="breaker-storm", seed=505,
            events=(
                event("link_down", at_ns=3e6, node=0),
                event("link_up", at_ns=4e6, node=0),
                event("link_down", at_ns=5e6, node=0),
                event("link_up", at_ns=6e6, node=0),
                event("link_down", at_ns=7e6, node=0),
                event("link_up", at_ns=8e6, node=0),
                event("node_crash", at_ns=15e6, node=0),
                event("node_restart", at_ns=24e6, node=0),
            ),
        ),
        tenants=_tenants(),
        horizon_ns=32e6,
    )


def scenarios() -> Dict[str, IncidentScenario]:
    """Name -> scenario, in catalogue order."""
    table = (
        _scenario_ue_storm(),
        _scenario_link_flap(),
        _scenario_crash_cascade(),
        _scenario_ce_slow_leak(),
        _scenario_breaker_storm(),
    )
    return {s.name: s for s in table}


def get_scenario(name: str) -> IncidentScenario:
    table = scenarios()
    if name not in table:
        raise KeyError(
            f"unknown incident scenario {name!r}; know {sorted(table)}"
        )
    return table[name]
