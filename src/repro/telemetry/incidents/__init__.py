"""``repro.telemetry.incidents`` — the scored incident benchmark.

The paper's operational claim — a rack operator detects, localizes,
and mitigates shared-memory faults faster with coordinated OS sharing
— needs a closed loop to be *measurable*: inject (``repro.chaos``),
alert (``repro.telemetry.health``), survive (``repro.workloads
.resilience``), then **score**.  This package is the scoring half:

* :mod:`~repro.telemetry.incidents.scenarios` — a catalogue of seeded,
  replayable incidents (UE storms, link flaps, crash cascades, CE slow
  leaks, breaker storms) under open-loop traffic;
* :mod:`~repro.telemetry.incidents.runner` — runs one scenario arm
  (detection on/off) end-to-end on the simulated clock;
* :mod:`~repro.telemetry.incidents.scoring` — MTTD, localization
  precision/recall/F1, MTTM, and blast radius from a flight-recorder
  dump alone, so scores replay offline.

CLI::

    python -m repro.telemetry.incidents list
    python -m repro.telemetry.incidents run ue-storm --detection both
    python -m repro.telemetry.incidents replay DUMP.json
    python -m repro.telemetry.incidents score DUMP.json

Everything runs on simulated time: same scenario, same seed —
byte-identical journal, dump, and scores.
"""

from .runner import IncidentResult, run_scenario
from .scenarios import (
    IncidentScenario,
    availability_objective,
    get_scenario,
    scenarios,
    spare_pages,
)
from .scoring import blame_set, ground_truth, render_score, score_dump

__all__ = [
    "IncidentResult",
    "IncidentScenario",
    "availability_objective",
    "blame_set",
    "get_scenario",
    "ground_truth",
    "render_score",
    "run_scenario",
    "scenarios",
    "score_dump",
    "spare_pages",
]
