"""CLI for the scored incident benchmark.

::

    python -m repro.telemetry.incidents list
    python -m repro.telemetry.incidents run ue-storm --detection both
    python -m repro.telemetry.incidents run all --json scores.json
    python -m repro.telemetry.incidents replay DUMP.json
    python -m repro.telemetry.incidents score DUMP.json [--target 0.999]

``run`` executes scenarios live (simulated clock; deterministic per
scenario+arm) and can write the flight-recorder dump, the Chrome trace,
and the score card.  ``replay`` re-renders a dump into the scored
incident timeline offline; ``score`` prints just the score card.  A
dump whose reason names a known scenario (``incident:<name>:<arm>``)
scores against that scenario's availability target; ``--target``
overrides.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from ..dashboard import render_incident_timeline
from ..health.recorder import load_dump
from .runner import run_scenario
from .scenarios import get_scenario, scenarios
from .scoring import render_score, score_dump


def _infer_target(dump: dict) -> Optional[float]:
    reason = dump.get("reason", "")
    if not reason.startswith("incident:"):
        return None
    parts = reason.split(":")
    try:
        return get_scenario(parts[1]).availability_target
    except KeyError:
        return None


def _write_json(path: pathlib.Path, payload: dict) -> None:
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {path}")


def _cmd_list() -> int:
    for name, s in scenarios().items():
        print(f"{name:15} seed={s.campaign.seed:<4} "
              f"horizon={s.horizon_ns / 1e6:.0f}ms  {s.description}")
    return 0


def _cmd_run(args) -> int:
    names = list(scenarios()) if args.scenario == "all" else [args.scenario]
    arms = {"on": [True], "off": [False], "both": [True, False]}[args.detection]
    all_scores: List[dict] = []
    for name in names:
        scenario = get_scenario(name)
        by_arm = {}
        for detection in arms:
            result = run_scenario(scenario, detection=detection)
            arm = "on" if detection else "off"
            by_arm[arm] = result
            print(render_score(result.score))
            print(f"detection:         {arm}")
            if args.timeline:
                print()
                print(render_incident_timeline(result.dump, result.score))
            if args.critical_path:
                print()
                print(result.critical_path)
            print()
            all_scores.append(dict(result.score, detection=arm))
            suffix = f".{arm}" if len(arms) > 1 else ""
            if args.dump is not None:
                path = args.dump
                if len(names) > 1:
                    path = path.with_name(f"{path.stem}.{name}{suffix}{path.suffix}")
                elif suffix:
                    path = path.with_name(f"{path.stem}{suffix}{path.suffix}")
                _write_json(path, result.dump)
            if args.trace_out is not None:
                path = args.trace_out
                if len(names) > 1 or suffix:
                    path = path.with_name(f"{path.stem}.{name}{suffix}{path.suffix}")
                _write_json(path, result.chrome_trace)
        if len(arms) == 2:
            delta = (by_arm["off"].score["mttm_ns"] or 0.0) - (
                by_arm["on"].score["mttm_ns"] or 0.0
            )
            print(f"{name}: detection-on beats detection-off on MTTM by "
                  f"{delta / 1e6:.3f} ms")
            print()
    if args.json is not None:
        _write_json(args.json, {"scores": all_scores})
    return 0


def _cmd_replay(args) -> int:
    dump = load_dump(args.dump)
    target = args.target if args.target is not None else _infer_target(dump)
    score = score_dump(dump, availability_target=target or 0.999,
                       scenario=dump.get("reason"))
    print(render_incident_timeline(dump, score))
    print()
    print(render_score(score))
    return 0


def _cmd_score(args) -> int:
    dump = load_dump(args.dump)
    target = args.target if args.target is not None else _infer_target(dump)
    score = score_dump(dump, availability_target=target or 0.999,
                       scenario=dump.get("reason"))
    print(render_score(score))
    if args.json is not None:
        _write_json(args.json, score)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.telemetry.incidents",
        description=__doc__.splitlines()[0],
    )
    sub = ap.add_subparsers(dest="cmd", required=True)

    sub.add_parser("list", help="list the scenario catalogue")

    p_run = sub.add_parser("run", help="run scenarios live and score them")
    p_run.add_argument("scenario", help="scenario name, or 'all'")
    p_run.add_argument("--detection", choices=("on", "off", "both"),
                       default="on", help="which detection arm(s) to run")
    p_run.add_argument("--dump", type=pathlib.Path, default=None,
                       help="write the flight-recorder dump JSON here")
    p_run.add_argument("--trace-out", type=pathlib.Path, default=None,
                       help="write the Chrome trace JSON here")
    p_run.add_argument("--json", type=pathlib.Path, default=None,
                       help="write all score cards here")
    p_run.add_argument("--timeline", action="store_true",
                       help="print the incident timeline panel")
    p_run.add_argument("--critical-path", action="store_true",
                       help="print the traced critical-path summary")

    p_replay = sub.add_parser(
        "replay", help="render a dump into the scored incident timeline")
    p_replay.add_argument("dump", type=pathlib.Path)
    p_replay.add_argument("--target", type=float, default=None,
                          help="availability target (default: from scenario)")

    p_score = sub.add_parser("score", help="score a dump offline")
    p_score.add_argument("dump", type=pathlib.Path)
    p_score.add_argument("--target", type=float, default=None,
                         help="availability target (default: from scenario)")
    p_score.add_argument("--json", type=pathlib.Path, default=None,
                         help="write the score card here")

    args = ap.parse_args(argv)
    if args.cmd == "list":
        return _cmd_list()
    if args.cmd == "run":
        return _cmd_run(args)
    if args.cmd == "replay":
        return _cmd_replay(args)
    return _cmd_score(args)


if __name__ == "__main__":
    sys.exit(main())
