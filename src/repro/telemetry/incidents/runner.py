"""Run one incident scenario end-to-end and score it.

One :func:`run_scenario` call is the whole ops loop on the simulated
clock: boot a rack, attach the health stack (detection on) or just its
windows (detection off), drive the fault-tolerant request path through
the scenario's chaos campaign on one event heap, snapshot the flight
recorder, and score the dump.  Tracing is always on — request-path
spans are part of the dump — and the global telemetry switches are
restored afterwards, so a scenario run never leaks state into the
caller's process.

The two arms differ *only* in detection wiring:

* **detection on** — stock SLO objectives plus one availability SLO per
  tenant, anomaly detectors, and the machine crash hook wired into the
  circuit breakers (fail fast on out-of-band evidence);
* **detection off** — no objectives, no detectors, no crash hook: the
  breakers see only inline evidence (failed attempts), so every fault
  costs the full retry ladder before failover.

Everything else — seeds, tenants, campaign, spec — is shared, so score
deltas between the arms measure detection, nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...bench.harness import build_rig
from ...workloads.resilience import (
    ChaosUnderLoad,
    ResilientTrafficEngine,
    default_spec,
)
from .. import TELEMETRY as _TEL
from ..health.recorder import FlightRecorder
from ..health.slo import default_objectives
from .scenarios import IncidentScenario, availability_objective
from .scoring import score_dump


@dataclass
class IncidentResult:
    """One scored scenario run (one arm)."""

    scenario: str
    detection: bool
    report: object  # ChaosLoadReport
    dump: dict
    score: dict
    chrome_trace: dict
    critical_path: str

    @property
    def journal(self) -> str:
        return self.report.journal


def run_scenario(
    scenario: IncidentScenario, detection: bool = True
) -> IncidentResult:
    """Run one arm of one scenario; deterministic per (scenario, arm)."""
    prev_enabled, prev_tracing = _TEL.enabled, _TEL.tracing
    _TEL.reset()
    _TEL.enable(tracing=True)
    try:
        rig = build_rig(n_nodes=scenario.n_nodes)
        recorder = FlightRecorder(capacity_windows=256, span_tail=256)
        if detection:
            objectives = default_objectives() + tuple(
                availability_objective(t.name, scenario.availability_target)
                for t in scenario.tenants
            )
            detectors = None  # HealthEngine default set
        else:
            objectives = ()
            detectors = []
        health = rig.kernel.attach_health(
            window_ns=scenario.window_ns,
            objectives=objectives,
            detectors=detectors,
            recorder=recorder,
        )
        engine = ResilientTrafficEngine(
            rig.kernel,
            list(scenario.tenants),
            resilience=default_spec(replica_node=scenario.replica_node),
            seed=scenario.campaign.seed,
            crash_detection=detection,
        )
        cul = ChaosUnderLoad(
            rig.kernel, engine, scenario.campaign,
            health=health, control_period_ns=scenario.window_ns,
        )
        report = cul.run(duration_ns=scenario.horizon_ns)
        # close any window still open at the horizon, then mirror the
        # final mitigation state, so the dump covers the whole run
        health.tick(rig.machine.max_time())
        cul.sync_recorder()
        arm = "on" if detection else "off"
        dump = recorder.snapshot(
            f"incident:{scenario.name}:{arm}",
            rig.machine.max_time(),
            machine=rig.machine,
            trace=_TEL.trace,
        )
        score = score_dump(
            dump, scenario.availability_target, scenario=scenario.name
        )
        chrome_trace = _TEL.trace.to_chrome_trace()
        critical_path = _TEL.trace.critical_path_summary()
        return IncidentResult(
            scenario=scenario.name,
            detection=detection,
            report=report,
            dump=dump,
            score=score,
            chrome_trace=chrome_trace,
            critical_path=critical_path,
        )
    finally:
        _TEL.reset()
        _TEL.enabled, _TEL.tracing = prev_enabled, prev_tracing
