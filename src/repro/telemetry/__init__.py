"""``repro.telemetry`` — rack-wide observability for the FlacOS substrate.

The paper's reliability stack (§3.2) and its evaluation both presuppose
*rack-wide* visibility: kernel state crosses node boundaries, so no
single node's counters explain a latency.  This package is that layer:

* a :class:`~repro.telemetry.registry.MetricsRegistry` of counters,
  gauges and fixed log-bucket histograms keyed ``(node, subsystem,
  name)``, timestamped off the simulated ``rack.clock``;
* :func:`span` tracing that records cause-linked trees and exports
  Chrome ``trace_event`` JSON plus a flamegraph-style text summary;
* a dashboard renderer (``python -m repro.telemetry run.json``).

Instrumentation contract
------------------------

The substrate's data plane is instrumented at its load-bearing paths
(``rack.machine`` cache hits/misses, ``core.memory`` walks and
shootdowns, ``core.fs`` page-cache and journal, ``core.ipc`` RPC,
``flacdk.reliability`` repair/scrub, chaos).  Every hook is guarded by
**one attribute check** on the module-level :data:`TELEMETRY` state::

    if _TEL.enabled:
        _TEL.registry.inc(node_id, "rack.machine", "cache.hit")

With telemetry disabled (the default) the data-plane fast path keeps its
golden latencies (``tests/rack/test_golden_latency.py``); enabled or
not, telemetry never advances a simulated clock — observing the rack is
free in simulated time.
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from typing import Optional, Union

from .registry import (
    BUCKET_BOUNDS,
    Histogram,
    MetricKey,
    MetricsRegistry,
    N_BUCKETS,
    RACK_WIDE,
    bucket_index,
    rate,
)
from .spans import STACK_PARENT, Span, TraceBuffer, validate_chrome_trace

RUN_SCHEMA = "repro.telemetry.run/1"

#: Subsystem prefix for tenant-scoped metrics (one subsystem per tenant,
#: so existing keying/export/digest machinery applies unchanged).
TENANT_PREFIX = "traffic/"


def tenant_subsystem(tenant: str) -> str:
    """The subsystem string carrying ``tenant``'s scoped metrics."""
    return TENANT_PREFIX + tenant


class TelemetryState:
    """The process-wide telemetry switchboard.

    ``enabled`` gates metrics, ``tracing`` gates spans (tracing implies
    enabled).  Both default off so an un-instrumented run pays exactly
    one attribute check per hook.
    """

    __slots__ = (
        "enabled",
        "tracing",
        "registry",
        "trace",
        "sampling",
        "sampling_active",
        "_sample_skip",
        "atlas",
    )

    def __init__(self) -> None:
        self.enabled = False
        self.tracing = False
        self.registry = MetricsRegistry()
        self.trace = TraceBuffer()
        #: per-subsystem event stride (see :meth:`set_sampling`)
        self.sampling: dict = {}
        #: hoisted ``bool(sampling)`` so the count fast path is one check
        self.sampling_active = False
        self._sample_skip: dict = {}
        #: the resource-attribution atlas (:mod:`repro.telemetry.atlas`),
        #: or None.  Hot paths pay one attribute check when unset, the
        #: same contract as ``enabled`` — and the atlas keeps its own
        #: state, never registry counters, so enabling it cannot perturb
        #: registry digests.
        self.atlas = None

    # -- switches --------------------------------------------------------------

    def enable(self, tracing: bool = False) -> "TelemetryState":
        self.enabled = True
        if tracing:
            self.tracing = True
        return self

    def disable(self) -> "TelemetryState":
        self.enabled = False
        self.tracing = False
        return self

    def reset(self) -> "TelemetryState":
        """Drop every recorded metric and span (switches unchanged)."""
        self.registry.clear()
        self.trace.clear()
        self._sample_skip.clear()
        if self.atlas is not None:
            self.atlas.clear()
        return self

    # -- sampling --------------------------------------------------------------

    def set_sampling(self, subsystem: Optional[str] = None, stride: int = 1) -> "TelemetryState":
        """Decimate one subsystem's per-event counters to every
        ``stride``-th event, recorded with weight ``stride``.

        Sampling is unbiased in expectation and cuts the *host* wall
        cost of hot instrumentation sites; it never touches simulated
        time.  Aggregated batch records (:meth:`add`) stay exact —
        they are already one call per batch.  ``stride=1`` restores
        exact counting for the subsystem; no subsystem restores all.
        """
        if subsystem is None:
            self.sampling.clear()
            self._sample_skip.clear()
        elif stride <= 1:
            self.sampling.pop(subsystem, None)
            self._sample_skip.pop(subsystem, None)
        else:
            self.sampling[subsystem] = int(stride)
        self.sampling_active = bool(self.sampling)
        return self

    # -- hot-path recording helpers --------------------------------------------

    def count(self, node: int, subsystem: str, name: str, delta: float = 1.0) -> None:
        """Record one event's counter delta, honouring sampling.

        The per-event instrumentation call: with no sampling configured
        (the default) this is exactly ``registry.inc`` without the
        timestamp, so golden counter values are unchanged.
        """
        if self.sampling_active:
            stride = self.sampling.get(subsystem)
            if stride is not None:
                skip = self._sample_skip
                left = skip.get(subsystem, 0)
                if left:
                    skip[subsystem] = left - 1
                    return
                skip[subsystem] = stride - 1
                delta *= stride
        counters = self.registry.counters
        key = (node, subsystem, name)
        counters[key] = counters.get(key, 0.0) + delta

    def add(self, node: int, subsystem: str, name: str, delta: float = 1.0) -> None:
        """Record one *pre-aggregated* batch delta, never sampled.

        Bulk paths call this once per batch; the value is exact by
        construction, so decimating it would only lose information.
        """
        self.registry.add((node, subsystem, name), delta)

    def observe_batch(self, node: int, subsystem: str, name: str, values) -> None:
        """Record a whole batch of histogram samples in one call.

        Aggregated like :meth:`add` — never sampled, exact by
        construction, and still free in simulated time.
        """
        self.registry.observe_batch(node, subsystem, name, values)

    # -- tenant scoping --------------------------------------------------------

    def tenant_add(self, node: int, tenant: str, name: str, delta: float = 1.0) -> None:
        """Aggregated counter delta scoped to one tenant."""
        self.registry.add((node, tenant_subsystem(tenant), name), delta)

    def tenant_observe_batch(self, node: int, tenant: str, name: str, values) -> None:
        """Batch histogram samples scoped to one tenant."""
        self.registry.observe_batch(node, tenant_subsystem(tenant), name, values)

    # -- export ----------------------------------------------------------------

    def export_run(self, meta: Optional[dict] = None) -> dict:
        """The whole run as one JSON-ready dict (metrics + trace, plus
        the attribution atlas section when one is attached)."""
        run = {
            "schema": RUN_SCHEMA,
            "meta": meta or {},
            "metrics": self.registry.snapshot(),
            "trace": self.trace.to_chrome_trace() if self.trace.spans else None,
        }
        if self.atlas is not None:
            run["atlas"] = self.atlas.snapshot()
        return run

    def export_json(
        self, path: Union[str, pathlib.Path], meta: Optional[dict] = None
    ) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.export_run(meta), indent=2) + "\n")
        return path


#: The singleton every instrumentation site checks.
TELEMETRY = TelemetryState()


def enable(tracing: bool = False) -> TelemetryState:
    return TELEMETRY.enable(tracing=tracing)


def disable() -> TelemetryState:
    return TELEMETRY.disable()


def reset() -> TelemetryState:
    return TELEMETRY.reset()


def load_run(path: Union[str, pathlib.Path]) -> dict:
    """Read an exported run, validating schema and (if present) trace."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") != RUN_SCHEMA:
        raise ValueError(
            f"{path}: not a telemetry run export (schema={data.get('schema')!r})"
        )
    if data.get("trace") is not None:
        validate_chrome_trace(data["trace"])
    return data


@contextmanager
def span(name: str, ctx=None, node: int = RACK_WIDE, parent=STACK_PARENT, **args):
    """Trace one operation: ``with span("fs.read", ctx=ctx, file=fid): ...``

    ``ctx`` is a :class:`~repro.rack.machine.NodeContext`; its simulated
    clock stamps the span and its node becomes the span's node.  Without
    a context the span is rack-wide and timestamped with the parent's
    clock position (or zero at top level) — still deterministic.
    ``parent`` overrides the stack-derived parent span id (pass a span
    id, or ``None`` to force a root span) for operations whose causal
    parent has already closed — retries, hedges, deferred event-heap
    work.  When tracing is off this is a no-op that yields ``None``.
    """
    t = TELEMETRY
    if not t.tracing:
        yield None
        return
    if ctx is not None:
        node = ctx.node_id
        start = ctx.now()
    else:
        current = t.trace.current()
        start = current.start_ns if current is not None else 0.0
    s = t.trace.begin(name, node, start, parent_id=parent, **args)
    try:
        yield s
    finally:
        if ctx is not None:
            end = ctx.now()
        else:
            end = max(start, s.start_ns)
        t.trace.end(s, end)


__all__ = [
    "BUCKET_BOUNDS",
    "Histogram",
    "MetricKey",
    "MetricsRegistry",
    "N_BUCKETS",
    "RACK_WIDE",
    "RUN_SCHEMA",
    "STACK_PARENT",
    "Span",
    "TELEMETRY",
    "TENANT_PREFIX",
    "TelemetryState",
    "TraceBuffer",
    "tenant_subsystem",
    "bucket_index",
    "disable",
    "enable",
    "load_run",
    "rate",
    "reset",
    "span",
    "validate_chrome_trace",
]
