"""Latency-breakdown dashboard: a terminal snapshot of one exported run.

Renders the headline health panel the paper's evaluation reads off —
per-node cache hit ratio, TLB activity (hits/misses/shootdowns),
page-cache hit ratio, RPC latency p50/p99, CE/UE/repair counts — then a
per-subsystem breakdown of every other metric, and (when the run was
traced) the flamegraph-style hottest-paths summary.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from . import TENANT_PREFIX
from .registry import Histogram, MetricsRegistry, RACK_WIDE, rate


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "-"
    if abs(value - round(value)) < 1e-9 and abs(value) < 1e15:
        return f"{int(round(value)):,}"
    return f"{value:,.2f}"


def _pct(value: float) -> str:
    return "-" if value != value else f"{value * 100:.1f}%"


class _Grid:
    """Fixed-width table (same look as the bench harness tables)."""

    def __init__(self, title: str, columns: List[str]) -> None:
        self.title = title
        self.columns = columns
        self.rows: List[List[str]] = []

    def add(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in self.rows))
            if self.rows
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        out = [f"-- {self.title} --"]
        out.append("  ".join(c.ljust(w) for c, w in zip(self.columns, widths)))
        if not self.rows:
            # an empty panel still renders: header plus an em-dash row,
            # so "no data" is visible rather than a vanished table
            out.append("  ".join("—".ljust(w) for w in widths))
        for row in self.rows:
            out.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(out)


def _node_label(node: int) -> str:
    return "rack" if node == RACK_WIDE else f"node{node}"


def _per_node(reg: MetricsRegistry, subsystem: str, name: str) -> Dict[int, float]:
    return {
        n: v
        for (n, s, m), v in reg.counters.items()
        if s == subsystem and m == name
    }


def _hist_union(
    reg: MetricsRegistry, subsystem: str, name: str
) -> Optional[Histogram]:
    merged: Optional[Histogram] = None
    for (n, s, m), h in reg.histograms.items():
        if s != subsystem or m != name:
            continue
        if merged is None:
            merged = Histogram()
        merged.count += h.count
        merged.total += h.total
        merged.min_value = min(merged.min_value, h.min_value)
        merged.max_value = max(merged.max_value, h.max_value)
        for i, c in enumerate(h.buckets):
            merged.buckets[i] += c
    return merged


def render_headline(reg: MetricsRegistry) -> str:
    """The acceptance panel: one row per node, the load-bearing ratios."""
    cache_hits = _per_node(reg, "rack.machine", "cache.hit")
    cache_misses = _per_node(reg, "rack.machine", "cache.miss")
    tlb_hits = _per_node(reg, "core.memory", "tlb.hit")
    tlb_misses = _per_node(reg, "core.memory", "tlb.miss")
    shootdowns = _per_node(reg, "core.memory", "tlb.shootdown.served")
    pc_hits = _per_node(reg, "core.fs", "page_cache.hit")
    pc_misses = _per_node(reg, "core.fs", "page_cache.miss")
    nodes = sorted(
        set(cache_hits) | set(cache_misses) | set(tlb_hits) | set(tlb_misses)
        | set(shootdowns) | set(pc_hits) | set(pc_misses)
    )
    grid = _Grid(
        "per-node health",
        ["node", "cache hit%", "tlb hit%", "tlb shootdowns", "pgcache hit%", "rpc p50/p99 (ns)"],
    )
    for node in nodes:
        rpc = reg.histogram(node, "core.ipc", "rpc.migration_ns")
        rpc_cell = (
            f"{_fmt(rpc.percentile(0.5))} / {_fmt(rpc.percentile(0.99))}"
            if rpc is not None and rpc.count
            else "-"
        )
        grid.add(
            _node_label(node),
            _pct(rate(cache_hits.get(node, 0.0), cache_misses.get(node, 0.0))
                 if (node in cache_hits or node in cache_misses) else float("nan")),
            _pct(rate(tlb_hits.get(node, 0.0), tlb_misses.get(node, 0.0))
                 if (node in tlb_hits or node in tlb_misses) else float("nan")),
            _fmt(shootdowns.get(node, 0.0)),
            _pct(rate(pc_hits.get(node, 0.0), pc_misses.get(node, 0.0))
                 if (node in pc_hits or node in pc_misses) else float("nan")),
            rpc_cell,
        )
    lines = [grid.render()] if nodes else []

    # rack-wide reliability summary
    ce = reg.counter_total("reliability", "fault.ce")
    ue = reg.counter_total("reliability", "fault.ue")
    repairs = reg.counter_total("reliability", "repair.ok")
    failed = reg.counter_total("reliability", "repair.fail")
    rel = _Grid("reliability", ["CE", "UE", "repairs ok", "repairs failed"])
    rel.add(_fmt(ce), _fmt(ue), _fmt(repairs), _fmt(failed))
    lines.append(rel.render())

    rpc_all = _hist_union(reg, "core.ipc", "rpc.migration_ns")
    zc_all = _hist_union(reg, "core.ipc", "ipc.zero_copy_send_ns")
    if rpc_all or zc_all:
        ipc = _Grid("ipc latency (simulated ns)",
                    ["path", "count", "mean", "p50", "p99", "max"])
        for label, h in (("rpc (migration)", rpc_all), ("socket (zero-copy)", zc_all)):
            if h is None or not h.count:
                continue
            ipc.add(label, _fmt(h.count), _fmt(h.mean),
                    _fmt(h.percentile(0.5)), _fmt(h.percentile(0.99)),
                    _fmt(h.max_value))
        lines.append(ipc.render())
    return "\n\n".join(lines)


def render_tenants(reg: MetricsRegistry) -> str:
    """Per-tenant traffic breakout: request/drop counts and latency
    percentiles from the tenant-scoped ``traffic/<name>`` subsystems."""
    tenants = reg.tenants(TENANT_PREFIX)
    if not tenants:
        return ""
    grid = _Grid(
        "per-tenant traffic",
        ["tenant", "requests", "admitted", "dropped (backlog/link)",
         "bytes", "lat p50 (ns)", "lat p99 (ns)"],
    )
    for tenant in tenants:
        sub = TENANT_PREFIX + tenant
        requests = reg.counter_total(sub, "requests")
        admitted = reg.counter_total(sub, "admitted")
        d_backlog = reg.counter_total(sub, "dropped.backlog")
        d_link = reg.counter_total(sub, "dropped.link")
        n_bytes = reg.counter_total(sub, "bytes")
        lat = _hist_union(reg, sub, "latency_ns")
        grid.add(
            tenant,
            _fmt(requests),
            _fmt(admitted),
            f"{_fmt(d_backlog + d_link)} ({_fmt(d_backlog)}/{_fmt(d_link)})",
            _fmt(n_bytes),
            _fmt(lat.percentile(0.5)) if lat and lat.count else "-",
            _fmt(lat.percentile(0.99)) if lat and lat.count else "-",
        )
    return grid.render()


def render_resilience(reg: MetricsRegistry) -> str:
    """Per-tenant fault-tolerance breakout: retries, hedges, breaker
    trips and lost requests from the ``traffic/<name>`` subsystems.
    Empty when no tenant recorded any resilience activity."""
    tenants = reg.tenants(TENANT_PREFIX)
    if not tenants:
        return ""
    rows = []
    for tenant in tenants:
        sub = TENANT_PREFIX + tenant
        cells = {
            name: reg.counter_total(sub, "resilience." + name)
            for name in ("retries", "hedges", "hedge_wins", "failovers",
                         "timed_out", "failed", "shed", "breaker_opens")
        }
        if any(cells.values()):
            rows.append((tenant, cells))
    if not rows:
        return ""
    grid = _Grid(
        "per-tenant resilience",
        ["tenant", "retries", "hedges (wins)", "failovers",
         "timed out", "failed", "shed", "breaker opens"],
    )
    for tenant, c in rows:
        grid.add(
            tenant,
            _fmt(c["retries"]),
            f"{_fmt(c['hedges'])} ({_fmt(c['hedge_wins'])})",
            _fmt(c["failovers"]),
            _fmt(c["timed_out"]),
            _fmt(c["failed"]),
            _fmt(c["shed"]),
            _fmt(c["breaker_opens"]),
        )
    return grid.render()


def render_subsystems(reg: MetricsRegistry) -> str:
    """Every metric, grouped by subsystem, nodes as columns."""
    sections = []
    for subsystem in reg.subsystems():
        names: Dict[Tuple[str, str], Dict[int, str]] = {}
        for (node, s, name), v in sorted(reg.counters.items()):
            if s == subsystem:
                names.setdefault(("counter", name), {})[node] = _fmt(v)
        for (node, s, name), v in sorted(reg.gauges.items()):
            if s == subsystem:
                names.setdefault(("gauge", name), {})[node] = _fmt(v)
        for (node, s, name), h in sorted(reg.histograms.items()):
            if s == subsystem:
                names.setdefault(("histogram", name), {})[node] = (
                    f"n={h.count} p50={_fmt(h.percentile(0.5))} p99={_fmt(h.percentile(0.99))}"
                )
        if not names:
            continue
        nodes = sorted({n for cells in names.values() for n in cells})
        grid = _Grid(subsystem, ["metric", "kind"] + [_node_label(n) for n in nodes])
        for (kind, name), cells in sorted(names.items(), key=lambda kv: kv[0][1]):
            grid.add(name, kind, *[cells.get(n, "-") for n in nodes])
        sections.append(grid.render())
    return "\n\n".join(sections) if sections else "(no metrics recorded)"


def render_incident_timeline(dump: dict, score: Optional[dict] = None) -> str:
    """Per-incident timeline panel over one flight-recorder dump.

    One chronological table — injection marks, alert fire/resolve,
    breaker transitions, predictor boosts — with the recovery point
    (injection + MTTM) appended when a score card is supplied.  Pure
    dict-walking, so it renders loaded dumps offline.
    """
    rows: List[Tuple[float, int, str, str]] = []
    for node, tail in sorted(dump.get("fault_tail", {}).items()):
        for ev in tail:
            if ev["kind"] in ("ue", "ce", "link_down", "node_crash", "node_restart"):
                where = "rack" if node == "-1" else f"node{node}"
                rows.append(
                    (ev["time_ns"], 0, f"INJECT {ev['kind']}",
                     f"[{where}] {ev.get('detail') or ''}".rstrip())
                )
    for alert in dump.get("alerts", []):
        if alert.get("event") == "firing":
            rows.append(
                (alert["fired_ns"], 1, "ALERT fired",
                 f"{alert['objective']} [{_node_label(alert['node'])}]")
            )
        else:
            rows.append(
                (alert.get("resolved_ns") or alert["fired_ns"], 2,
                 "ALERT resolved",
                 f"{alert['objective']} [{_node_label(alert['node'])}]")
            )
    for ev in dump.get("breakers", []):
        rows.append(
            (ev["t_ns"], 3, f"BREAKER {ev['from']}->{ev['to']}",
             f"{ev['tenant']}@node{ev['target']} reason={ev['reason']}")
        )
    for boost in dump.get("boosts", []):
        pages = ",".join(f"{p:#x}" for p in boost.get("pages", []))
        rows.append((boost["t_ns"], 4, "BOOST", f"cause={boost['cause']} pages={pages}"))
    if score is not None and score.get("t0_ns") is not None:
        t0 = score["t0_ns"]
        if score.get("mttd_ns") is not None:
            rows.append((t0 + score["mttd_ns"], 5, "DETECTED",
                         f"MTTD={score['mttd_ns'] / 1e6:.3f}ms"))
        if score.get("mttm_ns") is not None:
            rows.append((t0 + score["mttm_ns"], 6, "RECOVERED",
                         f"MTTM={score['mttm_ns'] / 1e6:.3f}ms "
                         f"target={score['availability_target']}"))
    rows.sort(key=lambda r: (r[0], r[1], r[2], r[3]))
    grid = _Grid(
        f"incident timeline — {dump.get('reason', '?')}",
        ["t (us)", "event", "detail"],
    )
    for t_ns, _rank, kind, detail in rows:
        grid.add(f"{t_ns / 1000.0:,.1f}", kind, detail)
    return grid.render()


def render_dashboard(run: dict, flame: bool = True) -> str:
    """Full dashboard text for one exported run dict (see ``load_run``)."""
    reg = MetricsRegistry.from_snapshot(run.get("metrics", {}))
    meta = run.get("meta") or {}
    header = "== rack telemetry dashboard =="
    if meta:
        header += "  (" + ", ".join(f"{k}={v}" for k, v in sorted(meta.items())) + ")"
    parts = [header]
    headline = render_headline(reg)
    if headline:
        parts.append(headline)
    tenants = render_tenants(reg)
    if tenants:
        parts.append(tenants)
    resilience = render_resilience(reg)
    if resilience:
        parts.append(resilience)
    parts.append(render_subsystems(reg))
    if run.get("atlas"):
        # lazy import: atlas.render imports this module's grid helpers
        from .atlas.render import render_atlas

        parts.append(render_atlas(run["atlas"]))
    if flame and run.get("trace"):
        from .spans import TraceBuffer, Span

        buf = TraceBuffer()
        for ev in run["trace"].get("traceEvents", []):
            if ev.get("ph") != "X":
                continue
            args = ev.get("args") or {}
            buf.spans.append(
                Span(
                    span_id=int(args.get("span_id", len(buf.spans) + 1)),
                    name=ev["name"],
                    node=ev["pid"],
                    start_ns=float(ev["ts"]) * 1000.0,
                    end_ns=(float(ev["ts"]) + float(ev.get("dur", 0.0))) * 1000.0,
                    parent_id=args.get("parent_id"),
                )
            )
        parts.append("-- hottest traced paths --\n" + buf.flame_summary())
    return "\n\n".join(parts)
