"""The rack-wide metrics registry.

Every metric is keyed ``(node, subsystem, name)``: the node observing it
(``-1`` for rack-wide events with no single observer), the subsystem
that owns it (``"rack.machine"``, ``"core.memory"``, ``"core.fs"``,
``"core.ipc"``, ``"reliability"``, ``"chaos"``, ...), and a dotted
metric name (``"cache.hit"``, ``"rpc.migration_ns"``).  Three metric
kinds cover the substrate:

* **counters** — monotone event counts (cache hits, TLB shootdowns);
* **gauges** — last-written values (scrub cursor, resident pages);
* **histograms** — value distributions over *fixed log-scale buckets*
  (operation latencies in simulated ns), so two runs that observe the
  same values produce bit-identical bucket arrays.

Nothing here advances a simulated clock: recording a metric is free in
simulated time (the instrumentation-overhead budget is *host* CPU only,
and the data plane guards every call behind one attribute check).
Timestamps, where kept, are read from the caller's simulated
``rack.clock`` and stored for the dashboard — never fed back into
latency accounting.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from hashlib import sha256
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

#: One metric's identity: (node, subsystem, name).
MetricKey = Tuple[int, str, str]

#: Node id used for rack-wide metrics with no single observing node.
RACK_WIDE = -1

#: Histogram bucket upper bounds: powers of two from 1 ns to ~18 min of
#: simulated time, plus an overflow bucket.  Fixed for every histogram so
#: exports and digests are stable across runs and machines.
N_BUCKETS = 42  # indices 0..40 = bounds 2^0..2^40, index 41 = overflow
BUCKET_BOUNDS: Tuple[float, ...] = tuple(float(1 << i) for i in range(41))
#: Array form for the vectorized bucket search (``observe_batch``).
_BOUNDS_ARR = np.asarray(BUCKET_BOUNDS, dtype=np.float64)


def bucket_index(value: float) -> int:
    """Index of the log-scale bucket holding ``value``.

    Bucket ``i`` (for ``i <= 40``) holds values in ``(2^(i-1), 2^i]``;
    bucket 0 holds everything ``<= 1`` (including zero and negatives,
    which the simulator never produces but must not crash on).
    """
    if value <= 1.0:
        return 0
    iv = int(value)
    if float(iv) < value:
        iv += 1  # ceil: 2.5 belongs with upper bound 4, not 2
    idx = (iv - 1).bit_length()
    return idx if idx <= 40 else 41


@dataclass
class Histogram:
    """Fixed-bucket log-scale histogram with exact count/sum/min/max."""

    count: int = 0
    total: float = 0.0
    min_value: float = float("inf")
    max_value: float = float("-inf")
    buckets: List[int] = field(default_factory=lambda: [0] * N_BUCKETS)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min_value:
            self.min_value = value
        if value > self.max_value:
            self.max_value = value
        self.buckets[bucket_index(value)] += 1

    def observe_batch(self, values) -> None:
        """Observe many values in one vectorized pass.

        Exactly equivalent to a loop of :meth:`observe`: the bucket
        search (``searchsorted`` against the fixed bounds, side="left")
        lands every value in the same bucket ``bucket_index`` would, and
        the running sum uses a strict left fold (``np.add.accumulate``)
        so the float total is bit-identical to sequential adds.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return
        self.count += int(values.size)
        self.total += float(np.add.accumulate(values)[-1])
        lo = float(values.min())
        hi = float(values.max())
        if lo < self.min_value:
            self.min_value = lo
        if hi > self.max_value:
            self.max_value = hi
        idx = np.searchsorted(_BOUNDS_ARR, values, side="left")
        per_bucket = np.bincount(idx, minlength=N_BUCKETS)
        buckets = self.buckets
        for i in np.nonzero(per_bucket)[0]:
            buckets[int(i)] += int(per_bucket[i])

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def percentile(self, q: float) -> float:
        """Estimated ``q``-quantile (0 < q <= 1) from the buckets.

        Returns the geometric midpoint of the bucket containing the
        quantile rank, clamped to the exact observed min/max — good to
        within one power of two, which is all a log-scale latency
        breakdown needs.  An empty histogram reports ``0.0`` (a NaN here
        poisons downstream arithmetic and serialises as ``null``);
        ``q`` outside ``(0, 1]`` is a caller bug and raises.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile must be in (0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = max(1, int(q * self.count + 0.999999))
        seen = 0
        for idx, n in enumerate(self.buckets):
            seen += n
            if seen >= rank:
                rep = self._bucket_midpoint(idx)
                return min(max(rep, self.min_value), self.max_value)
        return self.max_value

    @staticmethod
    def _bucket_midpoint(idx: int) -> float:
        if idx == 0:
            return 1.0
        if idx >= 41:
            return float(1 << 41)
        hi = float(1 << idx)
        lo = float(1 << (idx - 1))
        return (lo * hi) ** 0.5

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min_value if self.count else None,
            "max": self.max_value if self.count else None,
            # sparse encoding keeps exports small; indices are strings
            # because JSON object keys must be
            "buckets": {str(i): n for i, n in enumerate(self.buckets) if n},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        h = cls()
        h.count = int(data.get("count", 0))
        h.total = float(data.get("sum", 0.0))
        h.min_value = float(data["min"]) if data.get("min") is not None else float("inf")
        h.max_value = float(data["max"]) if data.get("max") is not None else float("-inf")
        for idx, n in (data.get("buckets") or {}).items():
            h.buckets[int(idx)] = int(n)
        return h


class MetricsRegistry:
    """All metrics of one run, keyed ``(node, subsystem, name)``.

    Instrumentation sites call :meth:`inc` / :meth:`set_gauge` /
    :meth:`observe`; exporters call :meth:`snapshot`.  ``last_update_ns``
    (when a site passes its simulated clock) is kept per key for the
    dashboard's "as of" column and never used for accounting.
    """

    def __init__(self) -> None:
        self.counters: Dict[MetricKey, float] = {}
        self.gauges: Dict[MetricKey, float] = {}
        self.histograms: Dict[MetricKey, Histogram] = {}
        self.last_update_ns: Dict[MetricKey, float] = {}

    # -- write side ------------------------------------------------------------

    def inc(
        self,
        node: int,
        subsystem: str,
        name: str,
        delta: float = 1.0,
        now_ns: Optional[float] = None,
    ) -> None:
        key = (node, subsystem, name)
        self.counters[key] = self.counters.get(key, 0.0) + delta
        if now_ns is not None:
            self.last_update_ns[key] = now_ns

    def add(self, key: MetricKey, delta: float = 1.0) -> None:
        """Bulk-increment a counter by a prebuilt key.

        The batch-path form of :meth:`inc`: one dict lookup per batch
        instead of one per op, no key tuple rebuilt, no timestamp.
        Counter deltas are small integers well inside float53, so one
        aggregated add lands on exactly the value ``n`` unit incs would.
        """
        self.counters[key] = self.counters.get(key, 0.0) + delta

    def set_gauge(
        self,
        node: int,
        subsystem: str,
        name: str,
        value: float,
        now_ns: Optional[float] = None,
    ) -> None:
        key = (node, subsystem, name)
        self.gauges[key] = value
        if now_ns is not None:
            self.last_update_ns[key] = now_ns

    def observe(
        self,
        node: int,
        subsystem: str,
        name: str,
        value: float,
        now_ns: Optional[float] = None,
    ) -> None:
        key = (node, subsystem, name)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe(value)
        if now_ns is not None:
            self.last_update_ns[key] = now_ns

    def observe_batch(
        self,
        node: int,
        subsystem: str,
        name: str,
        values,
        now_ns: Optional[float] = None,
    ) -> None:
        """Vectorized :meth:`observe` over a whole batch of values."""
        key = (node, subsystem, name)
        hist = self.histograms.get(key)
        if hist is None:
            hist = self.histograms[key] = Histogram()
        hist.observe_batch(values)
        if now_ns is not None:
            self.last_update_ns[key] = now_ns

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.last_update_ns.clear()

    # -- read side -------------------------------------------------------------

    def counter(self, node: int, subsystem: str, name: str) -> float:
        return self.counters.get((node, subsystem, name), 0.0)

    def counter_total(self, subsystem: str, name: str) -> float:
        """Sum of one counter across every node."""
        return sum(
            v for (n, s, m), v in self.counters.items() if s == subsystem and m == name
        )

    def histogram(self, node: int, subsystem: str, name: str) -> Optional[Histogram]:
        return self.histograms.get((node, subsystem, name))

    def tenants(self, prefix: str = "traffic/") -> List[str]:
        """Tenant names seen under the per-tenant subsystem convention.

        Tenant-scoped metrics live in subsystems named
        ``"<prefix><tenant>"`` (the traffic engine's convention), so the
        tenant set is derivable from the key space with no side table.
        """
        return sorted(
            {s[len(prefix):] for s in self.subsystems() if s.startswith(prefix)}
        )

    def subsystems(self) -> List[str]:
        seen = {k[1] for k in self.counters}
        seen.update(k[1] for k in self.gauges)
        seen.update(k[1] for k in self.histograms)
        return sorted(seen)

    def nodes(self) -> List[int]:
        seen = {k[0] for k in self.counters}
        seen.update(k[0] for k in self.gauges)
        seen.update(k[0] for k in self.histograms)
        return sorted(seen)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-ready snapshot: sorted keys, deterministic layout."""
        return {
            "counters": [
                [k[0], k[1], k[2], v] for k, v in sorted(self.counters.items())
            ],
            "gauges": [[k[0], k[1], k[2], v] for k, v in sorted(self.gauges.items())],
            "histograms": [
                [k[0], k[1], k[2], h.to_dict()]
                for k, h in sorted(self.histograms.items())
            ],
            "last_update_ns": [
                [k[0], k[1], k[2], t] for k, t in sorted(self.last_update_ns.items())
            ],
        }

    @classmethod
    def from_snapshot(cls, data: dict) -> "MetricsRegistry":
        reg = cls()
        for node, subsystem, name, value in data.get("counters", []):
            reg.counters[(node, subsystem, name)] = value
        for node, subsystem, name, value in data.get("gauges", []):
            reg.gauges[(node, subsystem, name)] = value
        for node, subsystem, name, hdict in data.get("histograms", []):
            reg.histograms[(node, subsystem, name)] = Histogram.from_dict(hdict)
        for node, subsystem, name, t in data.get("last_update_ns", []):
            reg.last_update_ns[(node, subsystem, name)] = t
        return reg

    # -- determinism digest ----------------------------------------------------

    def delta_digest(self, baseline: Optional[dict] = None) -> str:
        """SHA-256 over the sorted *monotone* metric deltas since ``baseline``.

        ``baseline`` is a prior :meth:`counter_baseline`; only counters
        and histogram ``(count, sum)`` pairs participate — they are
        monotone, so the delta of a run is independent of whatever ran
        before it in the same process.  Two identical runs therefore
        produce identical digests even against a dirty registry, which
        is what the chaos journal's byte-identity guarantee needs.
        """
        base_counters = (baseline or {}).get("counters", {})
        base_hists = (baseline or {}).get("histograms", {})
        lines = []
        for key in sorted(self.counters):
            delta = self.counters[key] - base_counters.get(key, 0.0)
            if delta:
                lines.append(f"c {key[0]} {key[1]} {key[2]} {delta:.6f}")
        for key in sorted(self.histograms):
            hist = self.histograms[key]
            b_count, b_sum = base_hists.get(key, (0, 0.0))
            d_count = hist.count - b_count
            d_sum = hist.total - b_sum
            if d_count:
                lines.append(f"h {key[0]} {key[1]} {key[2]} {d_count} {d_sum:.6f}")
        return sha256("\n".join(lines).encode("utf-8")).hexdigest()

    def counter_baseline(self) -> dict:
        """Cheap monotone-state capture for a later :meth:`delta_digest`."""
        return {
            "counters": dict(self.counters),
            "histograms": {k: (h.count, h.total) for k, h in self.histograms.items()},
        }


def merge_keys(*key_iters: Iterable[MetricKey]) -> List[MetricKey]:
    """Sorted union of metric keys (dashboard helper)."""
    merged = set()
    for keys in key_iters:
        merged.update(keys)
    return sorted(merged)


def rate(hits: float, misses: float) -> float:
    total = hits + misses
    return hits / total if total else 0.0


def find_bucket_bound(value: float) -> float:
    """Smallest fixed bucket bound >= value (axis-labelling helper)."""
    idx = bisect_left(list(BUCKET_BOUNDS), value)
    return BUCKET_BOUNDS[min(idx, len(BUCKET_BOUNDS) - 1)]
