"""``repro.telemetry.atlas`` — rack-wide resource attribution.

The telemetry stack through PR 9 can say *that* the rack is slow (SLO
burns, incident scores); this layer says *which tenant* is consuming
*which link* and *which global pages* are hot — the per-fabric-port
signals DRackSim exposes and the PCC-index guidelines exploit for
placement, and the prerequisite for locality-aware page placement and
multi-rack federation (ROADMAP).

Four pieces:

* **per-link accounting** — lives in the fabric itself
  (:class:`~repro.rack.interconnect.LinkTable`); the traffic engine
  charges every batch along its actual routed path via
  :meth:`~repro.rack.interconnect.Interconnect.charge`.
* **hot-page / hot-line sketches** — :class:`.sketch.SpaceSaving`
  top-k, fed from the machine's single-op and bulk data paths behind
  one ``_TEL.atlas is not None`` check (the ``TelemetryState.add``
  convention: bulk paths offer one aggregated call per batch).
* **blame / headroom** — :mod:`.attribution`: per-(tenant, link)
  saturated-byte shares, queueing-delay blame, time-to-saturation.
* **surfaces** — :meth:`Atlas.snapshot` (JSON), dashboard panels
  (:mod:`.render`), ``python -m repro.telemetry.atlas`` CLI, flight-
  recorder v3 tails, and a saturation SLO for the health engine.

Determinism contract: the atlas never advances a simulated clock, never
touches the metrics registry (so registry digests are identical with
the atlas on or off), and all its state is pure counters/dicts updated
in deterministic order — same seed, byte-identical snapshot.
"""

from __future__ import annotations

import json
import pathlib
from typing import Dict, Optional, Union

import numpy as np

from .. import TELEMETRY
from ..health.slo import Objective
from .attribution import (
    link_blame,
    link_headroom,
    link_nodes,
    node_headroom,
    node_of_vertex,
    tenant_blame,
)
from .sketch import SpaceSaving, aggregate_addrs

ATLAS_SCHEMA = "repro.telemetry.atlas/1"

_PAGE_SHIFT = 12  # 4 KiB pages — the placement granule


class Atlas:
    """The attribution state: sketches + queue-delay ledger + fabric ref.

    Per-link accounting lives on the fabric (it must survive atlas
    on/off toggles and is charged unconditionally by the traffic
    engine); the atlas holds what only exists when attribution is
    *enabled* — the address sketches and the per-tenant queueing-delay
    ledger — plus the fabric handle that lets :meth:`snapshot` join
    the two into one report.

    Ingestion is deferred: the data-plane hooks (:meth:`touch`,
    :meth:`touch_many`) only append to a pending buffer — an O(1)
    list append plus, for bulk batches, one defensive array copy — and
    the buffered stream is folded into the sketches lazily when a
    query (:attr:`pages`, :attr:`lines`, :meth:`hot_pages`,
    :meth:`snapshot`) needs them, or when the buffer crosses
    ``_DRAIN_ELEMS``.  Folding whole chunks at once amortises the
    per-call numpy fixed costs across hundreds of batches, which is
    what keeps the attribution wall-clock overhead on the simulated
    data plane within budget.  Drains happen at deterministic points
    (same seed → same buffer contents → same fold), so snapshots stay
    byte-identical across same-seed runs.
    """

    __slots__ = (
        "_pages", "_lines", "queue_delay_ns", "machine", "fabric",
        "_global_base", "_page_shift", "_line_shift",
        "_pending", "_pending_elems",
    )

    #: auto-drain threshold (buffered addresses) — bounds buffer memory
    _DRAIN_ELEMS = 1 << 18

    def __init__(
        self,
        machine=None,
        fabric=None,
        page_k: int = 64,
        line_k: int = 64,
        line_size: int = 64,
        global_base: Optional[int] = None,
    ) -> None:
        self._pages = SpaceSaving(page_k)
        self._lines = SpaceSaving(line_k)
        self._pending: list = []
        self._pending_elems = 0
        #: per-tenant queueing delay suffered (ns), fed by the engine
        self.queue_delay_ns: Dict[str, float] = {}
        self.machine = machine
        self.fabric = fabric if fabric is not None else (
            machine.fabric if machine is not None else None
        )
        if global_base is None:
            from ...rack.params import GLOBAL_BASE
            global_base = GLOBAL_BASE
        self._global_base = int(global_base)
        self._page_shift = _PAGE_SHIFT
        self._line_shift = max(0, int(line_size).bit_length() - 1)

    # -- ingestion (the machine hot-path hooks) --------------------------------

    def touch(self, addr: int, n_bytes: int) -> None:
        """One data-plane access; local addresses never cross the fabric
        and are skipped.  O(1): appends to the pending buffer."""
        if addr < self._global_base:
            return
        self._pending.append((addr, float(n_bytes)))
        self._pending_elems += 1
        if self._pending_elems > self._DRAIN_ELEMS:
            self._drain()

    def touch_many(self, addrs, sizes) -> None:
        """One bulk batch.  Copies the batch (callers reuse their
        buffers) into the pending stream; aggregation is deferred to
        the next drain so the sketch pays amortised O(distinct keys),
        not per-batch numpy fixed costs."""
        arr = np.array(addrs, dtype=np.int64)  # defensive copy
        if arr.ndim == 0:
            arr = arr.reshape(1)
        if arr.size == 0:
            return
        if not (np.isscalar(sizes) or getattr(sizes, "ndim", 1) == 0):
            sizes = np.array(sizes, dtype=np.float64)
        else:
            sizes = float(sizes)
        self._pending.append((arr, sizes))
        self._pending_elems += arr.size
        if self._pending_elems > self._DRAIN_ELEMS:
            self._drain()

    def _drain(self) -> None:
        """Fold the buffered access stream into the sketches.

        The whole buffer is aggregated as one multiset (per distinct
        line, then pages coarsened from the line groups) before a
        single ascending-key offer pass per sketch — deterministic, and
        two orders of magnitude cheaper than per-batch folding."""
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        self._pending_elems = 0
        chunks, weight_chunks = [], []
        single_addrs: list = []
        single_weights: list = []
        for addrs, sizes in pending:
            if isinstance(addrs, (int, np.integer)):  # single-op entry
                single_addrs.append(addrs)
                single_weights.append(sizes)
                continue
            chunks.append(addrs)
            if isinstance(sizes, float):
                weight_chunks.append(
                    np.full(addrs.size, sizes, dtype=np.float64))
            else:
                weight_chunks.append(sizes)
        if single_addrs:
            chunks.append(np.asarray(single_addrs, dtype=np.int64))
            weight_chunks.append(np.asarray(single_weights, dtype=np.float64))
        arr = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
        weights = (weight_chunks[0] if len(weight_chunks) == 1
                   else np.concatenate(weight_chunks))
        if int(arr.min()) < self._global_base:  # any local addrs to drop?
            mask = arr >= self._global_base
            arr, weights = arr[mask], weights[mask]
            if not len(arr):
                return
        if self._line_shift <= self._page_shift:
            # pages coarsen lines: scan the stream once for the line
            # aggregation, then collapse the (far smaller, already
            # sorted) distinct-line set into page groups with reduceat
            # instead of re-scanning every address
            line_keys, line_weights = aggregate_addrs(
                arr, self._line_shift, weights)
            self._lines.offer_many(line_keys, line_weights, presorted=True)
            page_buckets = line_keys >> (self._page_shift - self._line_shift)
            starts = np.flatnonzero(np.diff(page_buckets)) + 1
            if len(starts):
                starts = np.concatenate(([0], starts))
                page_keys = page_buckets[starts]
                page_weights = np.add.reduceat(line_weights, starts)
            else:
                page_keys = page_buckets[:1]
                page_weights = np.asarray([line_weights.sum()])
            self._pages.offer_many(page_keys, page_weights, presorted=True)
        else:
            keys, w = aggregate_addrs(arr, self._page_shift, weights)
            self._pages.offer_many(keys, w, presorted=True)
            keys, w = aggregate_addrs(arr, self._line_shift, weights)
            self._lines.offer_many(keys, w, presorted=True)

    @property
    def pages(self) -> SpaceSaving:
        """The hot-page sketch, with any pending accesses folded in."""
        self._drain()
        return self._pages

    @property
    def lines(self) -> SpaceSaving:
        """The hot-line sketch, with any pending accesses folded in."""
        self._drain()
        return self._lines

    def note_queue_delay(self, tenant: str, delta_ns: float) -> None:
        """Bank queueing delay a tenant's batch suffered (victim ledger)."""
        self.queue_delay_ns[tenant] = self.queue_delay_ns.get(tenant, 0.0) + delta_ns

    def clear(self) -> None:
        self._pending.clear()
        self._pending_elems = 0
        self._pages.clear()
        self._lines.clear()
        self.queue_delay_ns.clear()

    # -- reporting -------------------------------------------------------------

    def hot_pages(self, n: Optional[int] = None) -> list:
        """Top hot pages as JSON-ready rows, heaviest first."""
        return [
            {
                "page": key << self._page_shift,
                "addr": f"{key << self._page_shift:#x}",
                "bytes": weight,
                "error": error,
            }
            for key, weight, error in self.pages.top(n)
        ]

    def hot_lines(self, n: Optional[int] = None) -> list:
        return [
            {
                "line": key << self._line_shift,
                "addr": f"{key << self._line_shift:#x}",
                "bytes": weight,
                "error": error,
            }
            for key, weight, error in self.lines.top(n)
        ]

    def snapshot(self, now_ns: Optional[float] = None) -> dict:
        """The whole attribution picture as one JSON-ready dict."""
        if now_ns is None and self.machine is not None:
            now_ns = self.machine.max_time()
        fabric = self.fabric
        snap = {
            "schema": ATLAS_SCHEMA,
            "at_ns": now_ns,
            "sketch": {
                "page_k": self.pages.k,
                "line_k": self.lines.k,
                "page_coverage": round(self.pages.guaranteed_fraction(), 6),
                "line_coverage": round(self.lines.guaranteed_fraction(), 6),
                "total_bytes": self.pages.total,
            },
            "pages": self.hot_pages(),
            "lines": self.hot_lines(),
            "queue_delay_ns": {
                t: round(v, 3) for t, v in sorted(self.queue_delay_ns.items())
            },
        }
        if fabric is not None:
            links = fabric.links.snapshot(now_ns)
            # label per-link VNI rows with tenant names for offline readers
            for row in links["links"]:
                for vrow in row["vnis"]:
                    try:
                        vrow["tenant"] = fabric.vnis.name_of(vrow["vni"])
                    except Exception:
                        vrow["tenant"] = f"vni:{vrow['vni']}"
            snap["links"] = links
            snap["vnis"] = fabric.vnis.snapshot(now_ns)
            snap["blame"] = {
                "links": link_blame(fabric),
                "tenants": tenant_blame(fabric, self.queue_delay_ns),
            }
            snap["headroom"] = {
                "links": link_headroom(fabric, now_ns),
                "nodes": node_headroom(fabric, now_ns),
            }
        return snap

    def export_json(
        self, path: Union[str, pathlib.Path], now_ns: Optional[float] = None
    ) -> pathlib.Path:
        path = pathlib.Path(path)
        path.write_text(
            json.dumps(self.snapshot(now_ns), indent=2, sort_keys=True) + "\n"
        )
        return path


# -- switchboard wiring --------------------------------------------------------


def enable_atlas(machine=None, **kwargs) -> Atlas:
    """Install an :class:`Atlas` on the telemetry switchboard.

    The machine's data-plane hooks start feeding the sketches on the
    next access; per-link fabric accounting is always on (it rides the
    traffic engine's charge path), the atlas just gains a handle to
    report it.  Returns the installed atlas.
    """
    atlas = Atlas(machine=machine, **kwargs)
    TELEMETRY.atlas = atlas
    return atlas


def disable_atlas() -> None:
    """Remove the atlas; hot paths go back to one failed attribute check."""
    TELEMETRY.atlas = None


def saturation_objective(
    budget_per_window: float = 0.5,
    fast_burn: float = 2.0,
    slow_burn: float = 1.0,
) -> Objective:
    """The headroom SLO: saturated link-windows are budget burn.

    The fabric banks one ``fabric/link.saturated_window`` count each
    time any link closes a window at/over capacity (see
    :meth:`~repro.rack.interconnect.LinkTable._roll`), so this fires
    while headroom is exhausted — feed it to the health engine
    alongside :func:`~repro.telemetry.health.slo.default_objectives`.
    """
    return Objective(
        name="fabric.saturation",
        kind="rate",
        subsystem="fabric",
        metric="link.saturated_window",
        budget_per_window=budget_per_window,
        per_node=False,
        fast_burn=fast_burn,
        slow_burn=slow_burn,
    )


def load_atlas(path: Union[str, pathlib.Path]) -> dict:
    """Read an atlas snapshot *or* a telemetry run export carrying one."""
    data = json.loads(pathlib.Path(path).read_text())
    if data.get("schema") == ATLAS_SCHEMA:
        return data
    atlas = data.get("atlas")
    if isinstance(atlas, dict) and atlas.get("schema") == ATLAS_SCHEMA:
        return atlas
    raise ValueError(
        f"{path}: no atlas section (schema={data.get('schema')!r})"
    )


__all__ = [
    "ATLAS_SCHEMA",
    "Atlas",
    "SpaceSaving",
    "aggregate_addrs",
    "disable_atlas",
    "enable_atlas",
    "link_blame",
    "link_headroom",
    "link_nodes",
    "load_atlas",
    "node_headroom",
    "node_of_vertex",
    "saturation_objective",
    "tenant_blame",
]
