"""Contention blame and capacity-headroom math over the fabric tables.

Everything here is pure dict/float computation over the per-link
accounting (:class:`~repro.rack.interconnect.LinkTable`) and the VNI
registry — no clocks, no randomness — so attribution reports are
deterministic and can be recomputed offline from an atlas snapshot.

Two questions, two answers:

* **Blame** — "who owns the congestion?"  Per link, each tenant's share
  of the bytes moved during saturated windows; per tenant, a culprit-
  weighted assignment of the rack's total queueing delay (each link's
  victims' delay is charged to tenants by their saturated-byte share on
  that link).
* **Headroom** — "how long until it's full?"  Per link and per node
  port: current windowed rate vs capacity, and time-to-saturation under
  the current rate slope.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ...rack.interconnect import Interconnect, link_endpoints


def _tenant_of(fabric: Interconnect, vni: int) -> str:
    try:
        return fabric.vnis.name_of(vni)
    except Exception:
        return f"vni:{vni}"


def link_blame(fabric: Interconnect) -> List[dict]:
    """Per-link saturated-byte shares, tenant-labelled, links sorted.

    Only links that ever completed a saturated window appear — a link
    with headroom has nobody to blame.
    """
    rows: List[dict] = []
    table = fabric.links
    for link in table.links():
        s = table.get(link)
        if s is None or s.saturated_bytes <= 0:
            continue
        shares = table.saturated_share(link)
        rows.append({
            "link": link,
            "saturated_bytes": s.saturated_bytes,
            "saturated_windows": s.saturated_windows,
            "tenants": [
                {
                    "tenant": _tenant_of(fabric, vni),
                    "vni": vni,
                    "saturated_bytes": s.vni_saturated_bytes.get(vni, 0),
                    "share": round(share, 6),
                }
                for vni, share in sorted(shares.items())
            ],
        })
    return rows


def tenant_blame(
    fabric: Interconnect,
    queue_delay_ns: Optional[Dict[str, float]] = None,
) -> List[dict]:
    """Per-tenant contention summary: saturated bytes owned across all
    links, share on the bottleneck link, queueing delay suffered, and
    queueing delay *blamed* (the rack's total delay assigned by
    bottleneck saturated-share — the culprit view of the same ns).
    """
    delays = queue_delay_ns or {}
    bottleneck = fabric.links.bottleneck()
    bn_shares: Dict[int, float] = (
        fabric.links.saturated_share(bottleneck) if bottleneck else {}
    )
    total_delay = sum(delays.values())

    per_tenant: Dict[str, dict] = {}
    for link in fabric.links.links():
        s = fabric.links.get(link)
        for vni, sat in sorted(s.vni_saturated_bytes.items()):
            name = _tenant_of(fabric, vni)
            row = per_tenant.setdefault(
                name, {"tenant": name, "vni": vni, "saturated_bytes": 0}
            )
            row["saturated_bytes"] += sat
    # tenants that suffered delay but never saturated anything still report
    for name in delays:
        per_tenant.setdefault(
            name, {"tenant": name, "vni": None, "saturated_bytes": 0}
        )

    rows = []
    for name in sorted(per_tenant):
        row = per_tenant[name]
        vni = row["vni"]
        share = bn_shares.get(vni, 0.0) if vni is not None else 0.0
        rows.append({
            "tenant": name,
            "vni": vni,
            "saturated_bytes": row["saturated_bytes"],
            "bottleneck_share": round(share, 6),
            "queue_delay_ns": round(delays.get(name, 0.0), 3),
            "queue_blame_ns": round(share * total_delay, 3),
        })
    return rows


def link_headroom(
    fabric: Interconnect, now_ns: Optional[float] = None
) -> List[dict]:
    """Per-link capacity headroom, links sorted by id."""
    rows: List[dict] = []
    table = fabric.links
    for link in table.links():
        s = table.get(link)
        cap = s.capacity_bytes_per_s
        rate = table.rate_bytes_per_s(link, now_ns)
        tts = table.time_to_saturation_s(link, now_ns)
        rows.append({
            "link": link,
            "capacity_bytes_per_s": None if cap == float("inf") else cap,
            "rate_bytes_per_s": round(rate, 3),
            "utilisation": round(table.utilisation(link, now_ns), 6),
            "headroom_bytes_per_s": (
                None if cap == float("inf") else round(max(0.0, cap - rate), 3)
            ),
            "time_to_saturation_s": None if tts is None else round(tts, 6),
            "down": bool(s.downs) and not fabric.link_is_up(*link_endpoints(link)),
        })
    return rows


def node_headroom(
    fabric: Interconnect, now_ns: Optional[float] = None
) -> List[dict]:
    """Per-node-port headroom: each node's view is its first routed link
    (the port it drains through), so a saturated port pins the node."""
    rows: List[dict] = []
    nodes = sorted(
        int(v.split(":")[1])
        for v, d in fabric.graph.nodes(data=True)
        if d.get("kind") == "node"
    )
    for node_id in nodes:
        try:
            route = fabric.path_links(node_id)
        except Exception:
            rows.append({
                "node": node_id, "port": None, "utilisation": None,
                "rate_bytes_per_s": 0.0, "time_to_saturation_s": None,
                "reachable": False,
            })
            continue
        port = route[0] if route else None
        util = fabric.links.utilisation(port, now_ns) if port else 0.0
        tts = fabric.links.time_to_saturation_s(port, now_ns) if port else None
        rows.append({
            "node": node_id,
            "port": port,
            "utilisation": round(util, 6),
            "rate_bytes_per_s": round(
                fabric.links.rate_bytes_per_s(port, now_ns) if port else 0.0, 3
            ),
            "time_to_saturation_s": None if tts is None else round(tts, 6),
            "reachable": True,
        })
    return rows


def node_of_vertex(vertex: str) -> Optional[int]:
    """``"node:3"`` -> 3; switches and gmem have no node id."""
    if vertex.startswith("node:"):
        try:
            return int(vertex.split(":", 1)[1])
        except ValueError:
            return None
    return None


def link_nodes(link: str) -> List[int]:
    """Node ids among a link's endpoints (0, 1, or — never — 2 of them)."""
    out = []
    for vertex in link_endpoints(link):
        node = node_of_vertex(vertex)
        if node is not None:
            out.append(node)
    return out


__all__ = [
    "link_blame",
    "tenant_blame",
    "link_headroom",
    "node_headroom",
    "node_of_vertex",
    "link_nodes",
]
