"""Deterministic Space-Saving top-k sketches for hot-page/hot-line tracking.

Metwally et al.'s Space-Saving algorithm tracks the heaviest keys of a
stream in O(k) memory: a hit increments its counter; a novel key either
takes a free slot or *replaces* the current minimum, inheriting its
count as the new entry's error bound.  The invariant the reports lean
on: ``count - error`` is a *guaranteed lower bound* on a tracked key's
true weight, so ``sum(count - error) / total`` is a proven coverage
fraction — "at least this share of all traffic hit the keys we kept".

Determinism contract (the atlas's whole value rides on it): eviction
picks the minimum by ``(count, key)`` — ties break on the key itself,
never on dict iteration order or randomness — and batch offers apply in
ascending key order.  Two same-seed runs produce byte-identical
sketches; the sketch itself needs no seed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np


class SpaceSaving:
    """Top-k heavy-hitter sketch over weighted integer keys."""

    __slots__ = ("k", "counts", "errors", "total")

    def __init__(self, k: int = 64) -> None:
        if k <= 0:
            raise ValueError(f"sketch size must be positive, got {k}")
        self.k = int(k)
        self.counts: Dict[int, float] = {}
        self.errors: Dict[int, float] = {}
        #: total weight offered (tracked or not) — the coverage denominator
        self.total = 0.0

    def clear(self) -> None:
        self.counts.clear()
        self.errors.clear()
        self.total = 0.0

    def offer(self, key: int, weight: float = 1.0) -> None:
        """Offer one key occurrence of ``weight`` to the sketch."""
        self.total += weight
        counts = self.counts
        if key in counts:
            counts[key] += weight
            return
        if len(counts) < self.k:
            counts[key] = weight
            self.errors[key] = 0.0
            return
        # evict the minimum — deterministic tie-break on the key itself
        victim = min(counts.items(), key=_by_count_then_key)
        floor = victim[1]
        del counts[victim[0]]
        self.errors.pop(victim[0], None)
        counts[key] = floor + weight
        self.errors[key] = floor

    def offer_many(self, keys: np.ndarray, weights: np.ndarray,
                   presorted: bool = False) -> None:
        """Offer pre-aggregated (key, weight) pairs, ascending by key.

        Callers aggregate a batch with ``np.unique`` first (one Python
        call per *distinct* key per batch, not per access), then this
        applies them in sorted-key order so batched and sequential
        ingestion of the same multiset land byte-identical sketches
        whenever no eviction interleaves — and stay deterministic even
        when one does.  ``presorted=True`` skips the sort for callers
        (like :func:`aggregate_addrs`) whose keys are already ascending.

        The steady-state hot path — every key already tracked — runs as
        one inlined dict loop; only novel keys fall back to
        :meth:`offer`'s insert/evict logic.
        """
        if not presorted:
            order = np.argsort(keys, kind="stable")
            keys, weights = keys[order], weights[order]
        counts = self.counts
        misses = None
        for key, w in zip(keys.tolist(), weights.tolist()):
            if key in counts:
                counts[key] += w
                self.total += w
            elif misses is None:
                misses = [(key, w)]
            else:
                misses.append((key, w))
        if misses is not None:
            for key, w in misses:
                self.offer(int(key), float(w))

    # -- queries ---------------------------------------------------------------

    def top(self, n: Optional[int] = None) -> List[Tuple[int, float, float]]:
        """``(key, count, error)`` rows, heaviest first, key-tie-broken."""
        rows = sorted(
            ((k, c, self.errors.get(k, 0.0)) for k, c in self.counts.items()),
            key=lambda row: (-row[1], row[0]),
        )
        return rows if n is None else rows[:n]

    def guaranteed_fraction(self) -> float:
        """Proven share of total offered weight held by tracked keys.

        ``count - error`` lower-bounds each tracked key's true weight,
        so this is a floor on "how much of the traffic the top-k saw".
        """
        if self.total <= 0:
            return 0.0
        floor = sum(c - self.errors.get(k, 0.0) for k, c in self.counts.items())
        return min(1.0, floor / self.total)

    def __len__(self) -> int:
        return len(self.counts)

    def snapshot(self) -> dict:
        """JSON-ready dump: rows heaviest-first, coverage floor included."""
        return {
            "k": self.k,
            "total_weight": self.total,
            "coverage": round(self.guaranteed_fraction(), 6),
            "entries": [
                {"key": key, "weight": count, "error": error}
                for key, count, error in self.top()
            ],
        }


def _by_count_then_key(item: Tuple[int, float]) -> Tuple[float, int]:
    return (item[1], item[0])


def aggregate_addrs(
    addrs: Iterable[int], shift: int, sizes
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse raw addresses to per-bucket byte weights.

    ``addrs >> shift`` buckets (pages or lines), ``sizes`` either a
    scalar (uniform ops) or a per-address array.  Returns ascending
    bucket keys with their total byte weights — the ``offer_many``
    input shape.
    """
    arr = np.asarray(addrs, dtype=np.int64)
    buckets = arr >> shift
    scalar = np.isscalar(sizes) or getattr(sizes, "ndim", 1) == 0
    if buckets.size == 0:
        return buckets, np.zeros(0, dtype=np.float64)
    lo = int(buckets.min())
    span = int(buckets.max()) - lo + 1
    if span <= 4 * buckets.size + 1024:
        # dense bucket range (the common hot-working-set case): histogram
        # beats sort-based np.unique by a wide margin
        if scalar:
            hist = np.bincount(buckets - lo, minlength=span)
        else:
            hist = np.bincount(buckets - lo,
                               weights=np.asarray(sizes, dtype=np.float64),
                               minlength=span)
        nz = np.nonzero(hist)[0]
        sums = hist[nz].astype(np.float64)
        if scalar:
            sums *= float(sizes)
        return nz + lo, sums
    if scalar:
        keys, counts = np.unique(buckets, return_counts=True)
        return keys, counts.astype(np.float64) * float(sizes)
    weights = np.asarray(sizes, dtype=np.float64)
    keys, inverse = np.unique(buckets, return_inverse=True)
    sums = np.bincount(inverse, weights=weights, minlength=len(keys))
    return keys, sums
