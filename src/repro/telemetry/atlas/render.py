"""Terminal panels over one atlas snapshot dict.

Pure dict-walking (the snapshot may have been loaded from JSON), same
``_Grid`` look as the dashboard, so these panels drop straight into
``render_dashboard`` and the CLI.
"""

from __future__ import annotations

from typing import Optional

from ..dashboard import _fmt, _Grid, _pct


def _rate(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value >= 1e9:
        return f"{value / 1e9:.2f} GB/s"
    if value >= 1e6:
        return f"{value / 1e6:.2f} MB/s"
    return f"{value:,.0f} B/s"


def render_links(snap: dict, n: Optional[int] = None) -> str:
    """Per-link utilisation panel, busiest first."""
    links = (snap.get("links") or {}).get("links", [])
    rows = sorted(links, key=lambda r: (-r["bytes"], r["link"]))
    if n is not None:
        rows = rows[:n]
    grid = _Grid(
        "fabric links",
        ["link", "bytes", "rate", "capacity", "util", "sat windows", "downs"],
    )
    for row in rows:
        grid.add(
            row["link"],
            _fmt(row["bytes"]),
            _rate(row["rate_bytes_per_s"]),
            _rate(row["capacity_bytes_per_s"]),
            _pct(row["utilisation"]),
            _fmt(row["saturated_windows"]),
            _fmt(len(row.get("downs", []))),
        )
    return grid.render()


def render_pages(snap: dict, n: Optional[int] = 16) -> str:
    """Hot-page top-k panel, heaviest first, with the coverage floor."""
    sketch = snap.get("sketch") or {}
    grid = _Grid(
        f"hot pages (top-{sketch.get('page_k', '?')}, "
        f"coverage >= {_pct(sketch.get('page_coverage', float('nan')))})",
        ["page", "bytes", "error"],
    )
    for row in (snap.get("pages") or [])[:n]:
        grid.add(row["addr"], _fmt(row["bytes"]), _fmt(row["error"]))
    return grid.render()


def render_blame(snap: dict) -> str:
    """Contention blame: per-link saturated shares + per-tenant ledger."""
    blame = snap.get("blame") or {}
    parts = []
    link_grid = _Grid(
        "saturated-link blame",
        ["link", "sat bytes", "tenant", "share"],
    )
    for row in blame.get("links", []):
        for trow in row["tenants"]:
            link_grid.add(
                row["link"],
                _fmt(row["saturated_bytes"]),
                trow["tenant"],
                _pct(trow["share"]),
            )
    parts.append(link_grid.render())
    tenant_grid = _Grid(
        "per-tenant contention",
        ["tenant", "sat bytes", "bottleneck share",
         "queue delay (ms)", "queue blame (ms)"],
    )
    for row in blame.get("tenants", []):
        tenant_grid.add(
            row["tenant"],
            _fmt(row["saturated_bytes"]),
            _pct(row["bottleneck_share"]),
            f"{row['queue_delay_ns'] / 1e6:.3f}",
            f"{row['queue_blame_ns'] / 1e6:.3f}",
        )
    parts.append(tenant_grid.render())
    return "\n\n".join(parts)


def render_headroom(snap: dict) -> str:
    """Capacity headroom: per link and per node port."""
    headroom = snap.get("headroom") or {}
    parts = []
    link_grid = _Grid(
        "link headroom",
        ["link", "rate", "capacity", "util", "headroom", "t-to-sat (s)"],
    )
    for row in headroom.get("links", []):
        tts = row["time_to_saturation_s"]
        link_grid.add(
            row["link"],
            _rate(row["rate_bytes_per_s"]),
            _rate(row["capacity_bytes_per_s"]),
            _pct(row["utilisation"]),
            _rate(row["headroom_bytes_per_s"]),
            "-" if tts is None else f"{tts:.3f}",
        )
    parts.append(link_grid.render())
    node_grid = _Grid(
        "node-port headroom",
        ["node", "port", "util", "rate", "t-to-sat (s)"],
    )
    for row in headroom.get("nodes", []):
        if not row.get("reachable", True):
            node_grid.add(f"node{row['node']}", "SEVERED", "-", "-", "-")
            continue
        tts = row["time_to_saturation_s"]
        node_grid.add(
            f"node{row['node']}",
            row["port"] or "-",
            _pct(row["utilisation"]),
            _rate(row["rate_bytes_per_s"]),
            "-" if tts is None else f"{tts:.3f}",
        )
    parts.append(node_grid.render())
    return "\n\n".join(parts)


def render_atlas(snap: dict) -> str:
    """The full atlas block (dashboard integration point)."""
    parts = [render_links(snap), render_pages(snap)]
    if (snap.get("blame") or {}).get("links") or (snap.get("blame") or {}).get("tenants"):
        parts.append(render_blame(snap))
    if snap.get("headroom"):
        parts.append(render_headroom(snap))
    return "\n\n".join(parts)
