"""Attribution atlas CLI.

::

    python -m repro.telemetry.atlas top-links  SNAP.json [-n 10]
    python -m repro.telemetry.atlas top-pages  SNAP.json [-n 10]
    python -m repro.telemetry.atlas blame      SNAP.json
    python -m repro.telemetry.atlas headroom   SNAP.json

``SNAP.json`` is an atlas snapshot (:meth:`Atlas.export_json`) or a
telemetry run export that carries an ``atlas`` section
(:meth:`TelemetryState.export_json` with an atlas attached).  All views
are offline dict-walking — no simulator state needed.
"""

from __future__ import annotations

import argparse
import sys

from . import load_atlas
from .render import render_blame, render_headroom, render_links, render_pages


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.atlas",
        description="Resource-attribution views over one atlas snapshot.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_links = sub.add_parser("top-links", help="busiest fabric links")
    p_links.add_argument("snapshot")
    p_links.add_argument("-n", type=int, default=None, help="row limit")

    p_pages = sub.add_parser("top-pages", help="hottest global pages")
    p_pages.add_argument("snapshot")
    p_pages.add_argument("-n", type=int, default=16, help="row limit")

    p_blame = sub.add_parser("blame", help="contention attribution")
    p_blame.add_argument("snapshot")

    p_head = sub.add_parser("headroom", help="capacity headroom / t-to-sat")
    p_head.add_argument("snapshot")

    args = parser.parse_args(argv)
    try:
        snap = load_atlas(args.snapshot)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.command == "top-links":
        print(render_links(snap, n=args.n))
    elif args.command == "top-pages":
        print(render_pages(snap, n=args.n))
    elif args.command == "blame":
        print(render_blame(snap))
    elif args.command == "headroom":
        print(render_headroom(snap))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
