"""FlacDK — the FlacOS development kit (§3.2).

Three levels of libraries plus memory management and reliability, used
by both the FlacOS kernel and applications:

1. :mod:`repro.flacdk.hw` — atomics, barriers, cache maintenance.
2. :mod:`repro.flacdk.sync` — locks and the three lock-free families
   (replication, delegation, quiescence) over the shared op log.
3. :mod:`repro.flacdk.structures` — concurrent shared data structures.

Plus :mod:`repro.flacdk.alloc` (object allocator, layout, relocation,
reclamation) and :mod:`repro.flacdk.reliability` (monitor, prediction,
detection, checkpoint, recovery).
"""

from . import alloc, hw, reliability, structures, sync

__all__ = ["alloc", "hw", "reliability", "structures", "sync"]
