"""FlacDK memory management (§3.2).

Object-granularity allocation in shared memory, page-frame allocation,
hotness-aware layout, handle-based relocation/tiering, and epoch-based
reclamation integrated with checkpointing.
"""

from .frames import FrameAllocator, FrameAllocatorError, OutOfFramesError
from .layout import (
    HotColdPacker,
    ObjectInfo,
    PackingPlan,
    Placement,
    address_order_plan,
    expected_lines_touched,
)
from .object_allocator import (
    BadFreeError,
    SharedHeap,
    SharedHeapError,
    SharedHeapExhausted,
)
from .reclaim import IDLE, UNPINNED, EpochReclaimer
from .relocation import HandleError, HandleTable, MemoryTierer, RelocationStats, Relocator

__all__ = [
    "BadFreeError",
    "EpochReclaimer",
    "FrameAllocator",
    "FrameAllocatorError",
    "HandleError",
    "HandleTable",
    "HotColdPacker",
    "IDLE",
    "MemoryTierer",
    "ObjectInfo",
    "OutOfFramesError",
    "PackingPlan",
    "Placement",
    "RelocationStats",
    "Relocator",
    "SharedHeap",
    "SharedHeapError",
    "SharedHeapExhausted",
    "UNPINNED",
    "address_order_plan",
    "expected_lines_touched",
]
