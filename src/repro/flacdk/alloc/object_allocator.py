"""Object-granularity allocator for rack-shared memory (§3.2).

The heap's entire control state lives *in* the shared memory it manages,
manipulated only with cache-bypassing atomics, so any node can allocate
and free without locks and without relying on cache coherence:

* a bump cursor (atomic fetch-add) hands out fresh blocks;
* per-size-class free lists are Treiber stacks whose heads are atomic
  cells and whose next-pointers are stored in the freed blocks.

Layout (all offsets from the heap base)::

    +0    magic
    +8    bump cursor (offset into the data area)
    +16   data area size
    +64   free-list heads (one u64 per size class)
    ...   data area (line-aligned)

Every block carries an 8-byte header holding its size class; callers get
the payload address.  Size classes are powers of two from 16 B to 1 MiB.
"""

from __future__ import annotations

from typing import Dict, List

from ...rack.machine import NodeContext

_MAGIC = 0xF1AC05EA9  # "flacos heap"
_N_CLASSES = 17  # 16 B .. 1 MiB
_MIN_BLOCK = 16
_HEADER = 8
_HEADS_OFF = 64
_DATA_ALIGN = 64


class SharedHeapError(Exception):
    """Base class for heap failures."""


class SharedHeapExhausted(SharedHeapError):
    """The data area has no room for the requested block."""


class BadFreeError(SharedHeapError):
    """free() called on something that is not a live heap block."""


def _class_for(payload_size: int) -> int:
    """Smallest size class whose block fits header + payload."""
    need = max(_MIN_BLOCK, payload_size + _HEADER)
    cls = 0
    size = _MIN_BLOCK
    while size < need:
        size <<= 1
        cls += 1
    if cls >= _N_CLASSES:
        raise SharedHeapExhausted(
            f"allocation of {payload_size} B exceeds the largest size class "
            f"({_MIN_BLOCK << (_N_CLASSES - 1)} B blocks)"
        )
    return cls


def _class_size(cls: int) -> int:
    return _MIN_BLOCK << cls


class SharedHeap:
    """A lock-free shared-memory heap usable from every node.

    One node calls :meth:`format` once; afterwards every node may
    ``alloc``/``free`` through its own context.  The heap never touches
    Python-side shared state beyond the base address and size, so it is
    honest about where its metadata lives.
    """

    def __init__(self, base: int, size: int) -> None:
        if size < 4096:
            raise ValueError("heap needs at least 4 KiB")
        self.base = base
        self.size = size
        data_off = _HEADS_OFF + _N_CLASSES * 8
        data_off = (data_off + _DATA_ALIGN - 1) & ~(_DATA_ALIGN - 1)
        self.data_base = base + data_off
        self.data_size = size - data_off

    # -- lifecycle ----------------------------------------------------------

    def format(self, ctx: NodeContext) -> "SharedHeap":
        """Initialise heap metadata; call exactly once per heap region."""
        ctx.atomic_store(self.base + 8, 0)  # bump cursor
        ctx.atomic_store(self.base + 16, self.data_size)
        for cls in range(_N_CLASSES):
            ctx.atomic_store(self._head_addr(cls), 0)
        ctx.atomic_store(self.base, _MAGIC)
        return self

    def check_formatted(self, ctx: NodeContext) -> None:
        if ctx.atomic_load(self.base) != _MAGIC:
            raise SharedHeapError(f"no heap formatted at {self.base:#x}")

    # -- allocation ------------------------------------------------------------

    def alloc(self, ctx: NodeContext, payload_size: int) -> int:
        """Allocate ``payload_size`` bytes; returns the payload address."""
        if payload_size <= 0:
            raise ValueError("allocation size must be positive")
        cls = _class_for(payload_size)
        block = self._pop_free(ctx, cls)
        if block == 0:
            block = self._bump(ctx, cls)
        ctx.atomic_store(block, cls)  # header
        return block + _HEADER

    def free(self, ctx: NodeContext, payload_addr: int) -> None:
        """Return a block to its size-class free list.

        The caller must guarantee no other node still reads the object —
        that is what :class:`~repro.flacdk.alloc.reclaim.EpochReclaimer`
        is for.
        """
        block = payload_addr - _HEADER
        if not (self.data_base <= block < self.data_base + self.data_size):
            raise BadFreeError(f"{payload_addr:#x} is not inside this heap")
        cls = ctx.atomic_load(block)
        if cls >= _N_CLASSES:
            raise BadFreeError(f"corrupt or double-freed header at {block:#x}")
        ctx.atomic_store(block, _N_CLASSES + 1)  # poison header against double free
        head_addr = self._head_addr(cls)
        while True:
            old_head = ctx.atomic_load(head_addr)
            ctx.atomic_store(block + _HEADER, old_head)  # next pointer in payload
            swapped, _ = ctx.cas(head_addr, old_head, block)
            if swapped:
                return

    def payload_capacity(self, payload_addr: int, ctx: NodeContext) -> int:
        """Usable bytes of a live allocation (class size minus header)."""
        cls = ctx.atomic_load(payload_addr - _HEADER)
        if cls >= _N_CLASSES:
            raise BadFreeError(f"not a live block: {payload_addr:#x}")
        return _class_size(cls) - _HEADER

    # -- introspection ---------------------------------------------------------------

    def bytes_bumped(self, ctx: NodeContext) -> int:
        return ctx.atomic_load(self.base + 8)

    def free_blocks(self, ctx: NodeContext) -> Dict[int, int]:
        """Number of blocks on each size-class free list (walks the stacks)."""
        counts: Dict[int, int] = {}
        for cls in range(_N_CLASSES):
            n = 0
            cursor = ctx.atomic_load(self._head_addr(cls))
            while cursor and n < 1_000_000:
                n += 1
                cursor = ctx.atomic_load(cursor + _HEADER)
            if n:
                counts[cls] = n
        return counts

    def live_addresses(self, ctx: NodeContext) -> List[int]:
        """Scan the bumped area for live payload addresses (diagnostics).

        Linear in heap size; intended for tests and fragmentation metrics,
        not hot paths.
        """
        out: List[int] = []
        cursor = self.data_base
        end = self.data_base + self.bytes_bumped(ctx)
        while cursor < end:
            cls = ctx.atomic_load(cursor)
            if cls < _N_CLASSES:
                out.append(cursor + _HEADER)
                cursor += _class_size(cls)
            else:
                # freed block: its true class is unknown; walk free lists instead
                cursor += _MIN_BLOCK
        return out

    # -- internals -----------------------------------------------------------------------

    def _head_addr(self, cls: int) -> int:
        return self.base + _HEADS_OFF + cls * 8

    def _pop_free(self, ctx: NodeContext, cls: int) -> int:
        head_addr = self._head_addr(cls)
        while True:
            head = ctx.atomic_load(head_addr)
            if head == 0:
                return 0
            next_block = ctx.atomic_load(head + _HEADER)
            swapped, _ = ctx.cas(head_addr, head, next_block)
            if swapped:
                return head

    def _bump(self, ctx: NodeContext, cls: int) -> int:
        block_size = _class_size(cls)
        old = ctx.fetch_add(self.base + 8, block_size)
        if old + block_size > self.data_size:
            # undo is unsafe under concurrency; leak the slack and fail
            raise SharedHeapExhausted(
                f"heap at {self.base:#x} exhausted: wanted {block_size} B, "
                f"{self.data_size - old} B left"
            )
        return self.data_base + old
