"""Epoch-based memory reclamation, checkpoint-aware (§3.2, [47, 60]).

Freeing shared memory on a non-coherent rack is dangerous twice over: a
remote node may still be traversing the object, and — the paper's added
twist — a *checkpoint* may still reference the version being retired.
The reclaimer therefore frees a retired block only when

1. every node has announced an epoch past the retirement epoch, and
2. no checkpoint pin holds an epoch at or before it.

Epoch state lives in shared memory (a global epoch cell plus one
announcement cell per node, one pin cell per pin slot), so decisions are
made from globally visible facts, not Python-side convenience state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ...rack.machine import NodeContext

#: Announcement value meaning "this node is not in a read-side section".
IDLE = (1 << 64) - 1
#: Pin slot value meaning "unused".
UNPINNED = 0


@dataclass
class _Retired:
    addr: int
    epoch: int
    free_fn: Callable[[int], None]


class EpochReclaimer:
    """Grace-period tracking over shared epoch cells.

    Shared layout at ``base``::

        +0                global epoch (starts at 1)
        +8 .. +8*n        per-node announcement cells (IDLE when quiescent)
        then              pin cells (UNPINNED when free)
    """

    def __init__(self, base: int, n_nodes: int, n_pin_slots: int = 8) -> None:
        self.base = base
        self.n_nodes = n_nodes
        self.n_pin_slots = n_pin_slots
        self._retired: Dict[int, List[_Retired]] = {}
        self.freed_count = 0

    def format(self, ctx: NodeContext) -> "EpochReclaimer":
        ctx.atomic_store(self.base, 1)
        for node in range(self.n_nodes):
            ctx.atomic_store(self._announce_addr(node), IDLE)
        for slot in range(self.n_pin_slots):
            ctx.atomic_store(self._pin_addr(slot), UNPINNED)
        return self

    # -- read-side ------------------------------------------------------------

    def enter(self, ctx: NodeContext) -> int:
        """Begin a read-side critical section; returns the epoch entered."""
        epoch = ctx.atomic_load(self.base)
        ctx.atomic_store(self._announce_addr(ctx.node_id), epoch)
        return epoch

    def exit(self, ctx: NodeContext) -> None:
        ctx.atomic_store(self._announce_addr(ctx.node_id), IDLE)

    # -- write-side -------------------------------------------------------------

    def current_epoch(self, ctx: NodeContext) -> int:
        return ctx.atomic_load(self.base)

    def retire(self, ctx: NodeContext, addr: int, free_fn: Callable[[int], None]) -> None:
        """Schedule ``addr`` for freeing once its epoch is safe."""
        epoch = ctx.atomic_load(self.base)
        self._retired.setdefault(ctx.node_id, []).append(_Retired(addr, epoch, free_fn))

    def advance(self, ctx: NodeContext) -> int:
        """Bump the global epoch; returns the new value."""
        return ctx.fetch_add(self.base, 1) + 1

    def safe_epoch(self, ctx: NodeContext) -> int:
        """Largest epoch strictly below every announcement and pin."""
        horizon = ctx.atomic_load(self.base)
        for node in range(self.n_nodes):
            announced = ctx.atomic_load(self._announce_addr(node))
            if announced != IDLE:
                horizon = min(horizon, announced)
        for slot in range(self.n_pin_slots):
            pinned = ctx.atomic_load(self._pin_addr(slot))
            if pinned != UNPINNED:
                horizon = min(horizon, pinned)
        return horizon - 1

    def reclaim(self, ctx: NodeContext) -> int:
        """Free this node's retired blocks whose epoch is safe; returns count."""
        safe = self.safe_epoch(ctx)
        mine = self._retired.get(ctx.node_id, [])
        still_waiting: List[_Retired] = []
        freed = 0
        for item in mine:
            if item.epoch <= safe:
                item.free_fn(item.addr)
                freed += 1
            else:
                still_waiting.append(item)
        self._retired[ctx.node_id] = still_waiting
        self.freed_count += freed
        return freed

    def advance_and_reclaim(self, ctx: NodeContext) -> int:
        self.advance(ctx)
        return self.reclaim(ctx)

    def pending(self, node_id: Optional[int] = None) -> int:
        if node_id is not None:
            return len(self._retired.get(node_id, []))
        return sum(len(v) for v in self._retired.values())

    # -- checkpoint integration -----------------------------------------------------

    def pin(self, ctx: NodeContext, epoch: Optional[int] = None) -> int:
        """Hold reclamation at ``epoch`` (default: now).  Returns a slot id.

        The checkpoint machinery pins before walking multi-version state
        so the versions it references cannot be freed mid-checkpoint.
        """
        epoch = epoch if epoch is not None else ctx.atomic_load(self.base)
        for slot in range(self.n_pin_slots):
            swapped, _ = ctx.cas(self._pin_addr(slot), UNPINNED, epoch)
            if swapped:
                return slot
        raise RuntimeError("no free pin slots")

    def unpin(self, ctx: NodeContext, slot: int) -> None:
        ctx.atomic_store(self._pin_addr(slot), UNPINNED)

    # -- layout -------------------------------------------------------------------------

    @staticmethod
    def region_size(n_nodes: int, n_pin_slots: int = 8) -> int:
        return 8 * (1 + n_nodes + n_pin_slots)

    def _announce_addr(self, node_id: int) -> int:
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside reclaimer's rack")
        return self.base + 8 * (1 + node_id)

    def _pin_addr(self, slot: int) -> int:
        if not 0 <= slot < self.n_pin_slots:
            raise ValueError(f"pin slot {slot} out of range")
        return self.base + 8 * (1 + self.n_nodes + slot)
