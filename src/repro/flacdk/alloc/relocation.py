"""Runtime object movement: handles, relocation, and memory tiering (§3.2).

Objects that may move are reached through a :class:`HandleTable` — an
array of address cells in shared memory.  Relocating an object copies its
bytes to a new allocation and CASes the handle, so concurrent readers on
other nodes either see the old or the new location, never a torn pointer.
The tierer uses the same mechanism to demote cold objects from fast local
heaps to global memory and promote hot ones back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ...rack.machine import NodeContext
from .object_allocator import SharedHeap


class HandleError(Exception):
    pass


class HandleTable:
    """handle index -> object address, stored as atomic cells.

    Slot 0 of the table is a bump cursor for handle allocation; handles
    start at 1.  A handle holding address 0 is free/dead.
    """

    def __init__(self, base: int, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("handle table needs capacity >= 1")
        self.base = base
        self.capacity = capacity

    def format(self, ctx: NodeContext) -> "HandleTable":
        ctx.atomic_store(self.base, 0)
        for i in range(1, self.capacity + 1):
            ctx.atomic_store(self.base + i * 8, 0)
        return self

    def create(self, ctx: NodeContext, addr: int) -> int:
        handle = ctx.fetch_add(self.base, 1) + 1
        if handle > self.capacity:
            raise HandleError("handle table full")
        ctx.atomic_store(self._slot(handle), addr)
        return handle

    def resolve(self, ctx: NodeContext, handle: int) -> int:
        addr = ctx.atomic_load(self._slot(handle))
        if addr == 0:
            raise HandleError(f"dead handle {handle}")
        return addr

    def repoint(self, ctx: NodeContext, handle: int, old_addr: int, new_addr: int) -> bool:
        swapped, _ = ctx.cas(self._slot(handle), old_addr, new_addr)
        return swapped

    def destroy(self, ctx: NodeContext, handle: int) -> int:
        """Kill the handle; returns the last address it held."""
        return ctx.swap(self._slot(handle), 0)

    def _slot(self, handle: int) -> int:
        if not 1 <= handle <= self.capacity:
            raise HandleError(f"handle {handle} out of range")
        return self.base + handle * 8


@dataclass
class RelocationStats:
    moved: int = 0
    bytes_copied: int = 0
    failed_races: int = 0


class Relocator:
    """Moves handle-addressed objects between heaps/addresses."""

    def __init__(self, handles: HandleTable) -> None:
        self.handles = handles
        self.stats = RelocationStats()

    def relocate(
        self,
        ctx: NodeContext,
        handle: int,
        size: int,
        dst_heap: SharedHeap,
        src_heap: Optional[SharedHeap] = None,
        retire: Optional[Callable[[int], None]] = None,
    ) -> int:
        """Copy the object behind ``handle`` into ``dst_heap``.

        Returns the new address.  The old allocation is retired via
        ``retire`` (epoch reclamation) when given, freed immediately when
        ``src_heap`` is given, or left to the caller otherwise.
        """
        old_addr = self.handles.resolve(ctx, handle)
        data = ctx.load(old_addr, size)
        new_addr = dst_heap.alloc(ctx, size)
        ctx.store(new_addr, data)
        ctx.flush(new_addr, size)
        if not self.handles.repoint(ctx, handle, old_addr, new_addr):
            # someone else moved it first; roll back our copy
            dst_heap.free(ctx, new_addr)
            self.stats.failed_races += 1
            return self.handles.resolve(ctx, handle)
        self.stats.moved += 1
        self.stats.bytes_copied += size
        if retire is not None:
            retire(old_addr)
        elif src_heap is not None:
            src_heap.free(ctx, old_addr)
        return new_addr


class MemoryTierer:
    """Hotness-driven promotion/demotion between two heaps.

    ``hot_heap`` would typically sit in node-local memory and
    ``cold_heap`` in global memory; the tierer keeps objects above the
    threshold hot-resident and demotes the rest.
    """

    def __init__(
        self,
        relocator: Relocator,
        hot_heap: SharedHeap,
        cold_heap: SharedHeap,
        hot_threshold: float = 1.0,
    ) -> None:
        self.relocator = relocator
        self.hot_heap = hot_heap
        self.cold_heap = cold_heap
        self.hot_threshold = hot_threshold
        #: handle -> (size, hotness EWMA, currently_hot)
        self._tracked: Dict[int, List] = {}

    def track(self, handle: int, size: int, hot: bool) -> None:
        self._tracked[handle] = [size, 0.0, hot]

    def record_access(self, handle: int, weight: float = 1.0) -> None:
        entry = self._tracked.get(handle)
        if entry is None:
            raise HandleError(f"handle {handle} not tracked")
        entry[1] = 0.8 * entry[1] + weight

    def rebalance(self, ctx: NodeContext) -> Dict[str, int]:
        """Apply promotions/demotions; returns counts of each."""
        promoted = demoted = 0
        for handle, entry in self._tracked.items():
            size, hotness, is_hot = entry
            if hotness >= self.hot_threshold and not is_hot:
                self.relocator.relocate(ctx, handle, size, self.hot_heap, src_heap=self.cold_heap)
                entry[2] = True
                promoted += 1
            elif hotness < self.hot_threshold and is_hot:
                self.relocator.relocate(ctx, handle, size, self.cold_heap, src_heap=self.hot_heap)
                entry[2] = False
                demoted += 1
        return {"promoted": promoted, "demoted": demoted}
