"""Hotness-aware object layout and allocation packing (§3.2, [26, 40]).

Given a set of objects with access-frequency scores, the packer decides
an ordering/placement that concentrates hot objects onto as few cache
lines as possible — on a rack this matters doubly, because a line of
global memory costs hundreds of nanoseconds to pull and every cold byte
sharing it with a hot byte is amplified across nodes.

This module is pure policy: it produces placement plans; the relocation
machinery (:mod:`.relocation`) applies them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple


@dataclass(frozen=True)
class ObjectInfo:
    """One allocatable object as seen by the packer."""

    obj_id: int
    size: int
    hotness: float

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("object size must be positive")
        if self.hotness < 0:
            raise ValueError("hotness cannot be negative")


@dataclass(frozen=True)
class Placement:
    """A planned offset for one object within the packed arena."""

    obj_id: int
    offset: int
    size: int


@dataclass
class PackingPlan:
    placements: List[Placement]
    total_bytes: int
    line_size: int

    def offset_of(self, obj_id: int) -> int:
        for p in self.placements:
            if p.obj_id == obj_id:
                return p.offset
        raise KeyError(f"object {obj_id} not in plan")


class HotColdPacker:
    """Greedy hot-first packing with line alignment at the hot/cold seam.

    Objects are laid out in descending hotness; the first cold object is
    pushed to a fresh line so a hot line never shares with cold data.
    """

    def __init__(self, line_size: int = 64, hot_threshold: float = 1.0) -> None:
        if line_size & (line_size - 1):
            raise ValueError("line size must be a power of two")
        self.line_size = line_size
        self.hot_threshold = hot_threshold

    def pack(self, objects: Iterable[ObjectInfo]) -> PackingPlan:
        ordered = sorted(objects, key=lambda o: (-o.hotness, o.obj_id))
        placements: List[Placement] = []
        offset = 0
        crossed_seam = False
        for obj in ordered:
            if not crossed_seam and obj.hotness < self.hot_threshold:
                offset = _align(offset, self.line_size)
                crossed_seam = True
            placements.append(Placement(obj.obj_id, offset, obj.size))
            offset += _align(obj.size, 8)
        return PackingPlan(placements, total_bytes=offset, line_size=self.line_size)

    def hot_line_count(self, plan: PackingPlan, objects: Sequence[ObjectInfo]) -> int:
        """Lines that contain at least one hot object under this plan."""
        hotness = {o.obj_id: o.hotness for o in objects}
        hot_lines = set()
        for p in plan.placements:
            if hotness[p.obj_id] >= self.hot_threshold:
                first = p.offset // self.line_size
                last = (p.offset + p.size - 1) // self.line_size
                hot_lines.update(range(first, last + 1))
        return len(hot_lines)


def address_order_plan(objects: Iterable[ObjectInfo]) -> PackingPlan:
    """Baseline: objects laid out in id order, ignoring hotness."""
    placements: List[Placement] = []
    offset = 0
    for obj in sorted(objects, key=lambda o: o.obj_id):
        placements.append(Placement(obj.obj_id, offset, obj.size))
        offset += _align(obj.size, 8)
    return PackingPlan(placements, total_bytes=offset, line_size=64)


def expected_lines_touched(
    plan: PackingPlan, access_trace: Sequence[int], objects: Sequence[ObjectInfo]
) -> int:
    """Distinct lines pulled when replaying ``access_trace`` of object ids."""
    offsets: Dict[int, Tuple[int, int]] = {
        p.obj_id: (p.offset, p.size) for p in plan.placements
    }
    lines = set()
    for obj_id in access_trace:
        offset, size = offsets[obj_id]
        first = offset // plan.line_size
        last = (offset + size - 1) // plan.line_size
        lines.update(range(first, last + 1))
    return len(lines)


def _align(value: int, alignment: int) -> int:
    return (value + alignment - 1) & ~(alignment - 1)
