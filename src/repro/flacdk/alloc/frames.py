"""Page-frame allocator over a shared-memory bitmap.

Page tables, the shared page cache, and IPC buffer pools all need
page-granularity frames from global memory.  The allocator keeps one bit
per frame in a bitmap that itself lives in the managed region, updated
with CAS so every node can allocate concurrently.  A per-node rotor
spreads allocations across the bitmap to keep CAS contention low.
"""

from __future__ import annotations

from typing import Dict

from ...rack.machine import NodeContext

_WORD_BITS = 64


class FrameAllocatorError(Exception):
    pass


class OutOfFramesError(FrameAllocatorError):
    pass


class FrameAllocator:
    """Allocates fixed-size frames from ``[base, base+size)``.

    The first frames of the region are reserved for the bitmap itself.
    """

    def __init__(self, base: int, size: int, frame_size: int = 4096) -> None:
        if frame_size & (frame_size - 1):
            raise ValueError("frame size must be a power of two")
        if size < 2 * frame_size:
            raise ValueError("region too small for a bitmap and one frame")
        self.base = base
        self.size = size
        self.frame_size = frame_size
        total_frames = size // frame_size
        bitmap_bytes = (total_frames + 7) // 8
        bitmap_frames = (bitmap_bytes + frame_size - 1) // frame_size
        self.n_frames = total_frames - bitmap_frames
        self.bitmap_base = base
        self.frames_base = base + bitmap_frames * frame_size
        self._n_words = (self.n_frames + _WORD_BITS - 1) // _WORD_BITS
        self._rotor: Dict[int, int] = {}

    def format(self, ctx: NodeContext) -> "FrameAllocator":
        """Zero the bitmap (all frames free).  Call once per region."""
        for word in range(self._n_words):
            ctx.atomic_store(self.bitmap_base + word * 8, 0)
        # mark the tail bits beyond n_frames as allocated so they never leave
        tail_bits = self._n_words * _WORD_BITS - self.n_frames
        if tail_bits:
            last = self.bitmap_base + (self._n_words - 1) * 8
            mask = ((1 << tail_bits) - 1) << (_WORD_BITS - tail_bits)
            ctx.atomic_store(last, mask)
        return self

    # -- allocation --------------------------------------------------------------

    def alloc(self, ctx: NodeContext) -> int:
        """Allocate one frame; returns its rack physical address."""
        start_word = self._rotor.get(ctx.node_id, (ctx.node_id * 7) % max(1, self._n_words))
        for probe in range(self._n_words):
            word_idx = (start_word + probe) % self._n_words
            word_addr = self.bitmap_base + word_idx * 8
            while True:
                word = ctx.atomic_load(word_addr)
                if word == (1 << _WORD_BITS) - 1:
                    break  # word full, next word
                bit = _lowest_zero_bit(word)
                swapped, _ = ctx.cas(word_addr, word, word | (1 << bit))
                if swapped:
                    self._rotor[ctx.node_id] = word_idx
                    frame_idx = word_idx * _WORD_BITS + bit
                    return self.frames_base + frame_idx * self.frame_size
        raise OutOfFramesError(f"no free frames in region at {self.base:#x}")

    def free(self, ctx: NodeContext, frame_addr: int) -> None:
        frame_idx = self._frame_index(frame_addr)
        word_addr = self.bitmap_base + (frame_idx // _WORD_BITS) * 8
        mask = 1 << (frame_idx % _WORD_BITS)
        while True:
            word = ctx.atomic_load(word_addr)
            if not word & mask:
                raise FrameAllocatorError(f"double free of frame {frame_addr:#x}")
            swapped, _ = ctx.cas(word_addr, word, word & ~mask)
            if swapped:
                return

    def is_allocated(self, ctx: NodeContext, frame_addr: int) -> bool:
        frame_idx = self._frame_index(frame_addr)
        word = ctx.atomic_load(self.bitmap_base + (frame_idx // _WORD_BITS) * 8)
        return bool(word & (1 << (frame_idx % _WORD_BITS)))

    def free_frames(self, ctx: NodeContext) -> int:
        """Count free frames (bitmap scan; diagnostics only)."""
        free = 0
        for word_idx in range(self._n_words):
            word = ctx.atomic_load(self.bitmap_base + word_idx * 8)
            free += _WORD_BITS - bin(word).count("1")
        return free

    def _frame_index(self, frame_addr: int) -> int:
        off = frame_addr - self.frames_base
        if off < 0 or off % self.frame_size or off // self.frame_size >= self.n_frames:
            raise FrameAllocatorError(f"{frame_addr:#x} is not a frame of this allocator")
        return off // self.frame_size


def _lowest_zero_bit(word: int) -> int:
    inverted = ~word & ((1 << _WORD_BITS) - 1)
    return (inverted & -inverted).bit_length() - 1
