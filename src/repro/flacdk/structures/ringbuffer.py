"""Single-producer single-consumer ring buffer in shared memory (§3.2).

The workhorse of FlacOS IPC: the producer owns the tail, the consumer
owns the head, and each side touches the other's counter only through
atomics.  Payload slots are published with flush and consumed after
invalidate, and every slot carries the producer's timestamp so the
consumer's simulated clock is ordered after the send.

Layout::

    +0    head (consumer cursor, atomic)
    +8    tail (producer cursor, atomic)
    +16   capacity (slots)
    +24   slot payload capacity (bytes)
    +64   slots

Slot layout::

    +0    producer timestamp (f64 bits)
    +8    payload length (u32) + pad
    +16   payload
"""

from __future__ import annotations

import struct
from typing import Optional

from ...rack.machine import NodeContext

_HEADER = 64
_SLOT_META = 16


class RingError(Exception):
    pass


class SpscRing:
    """Bounded SPSC byte-message queue over global memory."""

    def __init__(self, base: int, capacity: int, payload_capacity: int = 4096) -> None:
        if capacity < 1:
            raise ValueError("ring capacity must be >= 1")
        self.base = base
        self.capacity = capacity
        self.payload_capacity = payload_capacity
        self.slot_size = _align64(_SLOT_META + payload_capacity)

    @staticmethod
    def region_size(capacity: int, payload_capacity: int = 4096) -> int:
        return _HEADER + capacity * _align64(_SLOT_META + payload_capacity)

    def format(self, ctx: NodeContext) -> "SpscRing":
        ctx.atomic_store(self.base, 0)
        ctx.atomic_store(self.base + 8, 0)
        ctx.atomic_store(self.base + 16, self.capacity)
        ctx.atomic_store(self.base + 24, self.payload_capacity)
        return self

    # -- producer ------------------------------------------------------------------

    def try_push(self, ctx: NodeContext, payload: bytes) -> bool:
        """Enqueue one message; False when the ring is full."""
        if len(payload) > self.payload_capacity:
            raise RingError(
                f"message of {len(payload)} B exceeds slot capacity {self.payload_capacity}"
            )
        tail = ctx.atomic_load(self.base + 8)
        head = ctx.atomic_load(self.base)
        if tail - head >= self.capacity:
            return False
        slot = self._slot(tail)
        meta = struct.pack("<dI4x", ctx.now(), len(payload))
        ctx.store(slot, meta + payload)
        ctx.flush(slot, _SLOT_META + len(payload))
        ctx.fence()
        ctx.atomic_store(self.base + 8, tail + 1)
        return True

    # -- consumer --------------------------------------------------------------------

    def try_pop(self, ctx: NodeContext) -> Optional[bytes]:
        """Dequeue one message; None when the ring is empty."""
        head = ctx.atomic_load(self.base)
        tail = ctx.atomic_load(self.base + 8)
        if head == tail:
            return None
        slot = self._slot(head)
        ctx.invalidate(slot, _SLOT_META)
        ts, length = struct.unpack("<dI4x", ctx.load(slot, _SLOT_META))
        ctx.invalidate(slot + _SLOT_META, length)
        payload = ctx.load(slot + _SLOT_META, length)
        ctx.node.clock.sync_to(ts)
        ctx.atomic_store(self.base, head + 1)
        return payload

    def peek_len(self, ctx: NodeContext) -> Optional[int]:
        """Length of the next message without consuming it."""
        head = ctx.atomic_load(self.base)
        if head == ctx.atomic_load(self.base + 8):
            return None
        slot = self._slot(head)
        ctx.invalidate(slot + 8, 4)
        return struct.unpack("<I", ctx.load(slot + 8, 4))[0]

    # -- shared ------------------------------------------------------------------------

    def size(self, ctx: NodeContext) -> int:
        return ctx.atomic_load(self.base + 8) - ctx.atomic_load(self.base)

    def is_empty(self, ctx: NodeContext) -> bool:
        return self.size(ctx) == 0

    def is_full(self, ctx: NodeContext) -> bool:
        return self.size(ctx) >= self.capacity

    def _slot(self, cursor: int) -> int:
        return self.base + _HEADER + (cursor % self.capacity) * self.slot_size


def _align64(value: int) -> int:
    return (value + 63) & ~63
