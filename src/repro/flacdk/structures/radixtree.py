"""Shared radix tree over global memory (§3.2).

The index structure behind the shared page table (§3.3) and the shared
page cache (§3.4): a fixed-depth radix over 64-bit keys whose interior
nodes are arrays of atomic cells allocated from a shared heap.  All slot
words are read/written with cache-bypassing atomics, so lookups are
always coherent (and pay global-memory latency — which is why FlacOS
puts a per-node TLB in front of the page-table instance).

Values are arbitrary nonzero u64s; 0 means "absent".
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from ...rack.machine import NodeContext
from ..alloc.object_allocator import SharedHeap


class RadixError(Exception):
    pass


class SharedRadixTree:
    """Fixed-shape radix tree: ``levels`` levels of ``2**fanout_bits`` slots."""

    def __init__(
        self,
        root_ptr_addr: int,
        heap: SharedHeap,
        key_bits: int = 48,
        fanout_bits: int = 8,
    ) -> None:
        if key_bits % fanout_bits:
            raise ValueError("key_bits must be a multiple of fanout_bits")
        self.root_ptr_addr = root_ptr_addr
        self.heap = heap
        self.key_bits = key_bits
        self.fanout_bits = fanout_bits
        self.levels = key_bits // fanout_bits
        self.fanout = 1 << fanout_bits
        self.node_bytes = self.fanout * 8

    def format(self, ctx: NodeContext) -> "SharedRadixTree":
        ctx.atomic_store(self.root_ptr_addr, 0)
        return self

    # -- operations ---------------------------------------------------------------

    def insert(self, ctx: NodeContext, key: int, value: int) -> None:
        """Map ``key`` to nonzero ``value`` (overwrites an existing mapping)."""
        if value == 0:
            raise RadixError("value 0 is reserved for 'absent'")
        self._check_key(key)
        slot_addr = self._descend(ctx, key, create=True)
        ctx.atomic_store(slot_addr, value)

    def insert_if_absent(self, ctx: NodeContext, key: int, value: int) -> int:
        """CAS-insert; returns the winning value (ours or the racer's)."""
        if value == 0:
            raise RadixError("value 0 is reserved for 'absent'")
        self._check_key(key)
        slot_addr = self._descend(ctx, key, create=True)
        swapped, current = ctx.cas(slot_addr, 0, value)
        return value if swapped else current

    def lookup(self, ctx: NodeContext, key: int) -> Optional[int]:
        self._check_key(key)
        slot_addr = self._descend(ctx, key, create=False)
        if slot_addr is None:
            return None
        value = ctx.atomic_load(slot_addr)
        return value or None

    def remove(self, ctx: NodeContext, key: int) -> Optional[int]:
        """Unmap ``key``; returns the removed value (leaves interior nodes)."""
        self._check_key(key)
        slot_addr = self._descend(ctx, key, create=False)
        if slot_addr is None:
            return None
        old = ctx.swap(slot_addr, 0)
        return old or None

    def update(self, ctx: NodeContext, key: int, expected: int, new: int) -> bool:
        """CAS an existing mapping from ``expected`` to ``new``."""
        if new == 0:
            raise RadixError("use remove() to unmap")
        self._check_key(key)
        slot_addr = self._descend(ctx, key, create=False)
        if slot_addr is None:
            return False
        swapped, _ = ctx.cas(slot_addr, expected, new)
        return swapped

    def lookup_range(self, ctx: NodeContext, start_key: int, count: int) -> List[Optional[int]]:
        """Gang lookup: values for ``count`` consecutive keys.

        Descends once per *leaf node* instead of once per key — for
        sequential scans (page-cache reads of a file run) this cuts the
        per-key cost from a full tree walk to one atomic slot load.
        """
        self._check_key(start_key)
        if count < 1:
            return []
        if start_key + count - 1 >> self.key_bits:
            raise RadixError("range extends past the key space")
        out: List[Optional[int]] = []
        key = start_key
        remaining = count
        while remaining > 0:
            slot_addr = self._descend(ctx, key, create=False)
            slot_index = key & (self.fanout - 1)
            in_leaf = min(remaining, self.fanout - slot_index)
            if slot_addr is None:
                out.extend([None] * in_leaf)
            else:
                for i in range(in_leaf):
                    value = ctx.atomic_load(slot_addr + i * 8)
                    out.append(value or None)
            key += in_leaf
            remaining -= in_leaf
        return out

    def slot_range(
        self, ctx: NodeContext, start_key: int, count: int, create: bool = False
    ) -> List[Optional[int]]:
        """Leaf-slot *addresses* for ``count`` consecutive keys.

        The write-side companion of :meth:`lookup_range`: one descend per
        leaf node, so bulk inserts (page-cache population of a file run)
        pay the interior-node walk once per 2**fanout_bits keys.  With
        ``create`` false, keys under missing interior nodes yield None.
        """
        self._check_key(start_key)
        if count < 1:
            return []
        if start_key + count - 1 >> self.key_bits:
            raise RadixError("range extends past the key space")
        out: List[Optional[int]] = []
        key = start_key
        remaining = count
        while remaining > 0:
            slot_addr = self._descend(ctx, key, create=create)
            slot_index = key & (self.fanout - 1)
            in_leaf = min(remaining, self.fanout - slot_index)
            if slot_addr is None:
                out.extend([None] * in_leaf)
            else:
                out.extend(slot_addr + i * 8 for i in range(in_leaf))
            key += in_leaf
            remaining -= in_leaf
        return out

    def items(self, ctx: NodeContext) -> Iterator[Tuple[int, int]]:
        """All (key, value) pairs — full scan, diagnostics only."""
        root = ctx.atomic_load(self.root_ptr_addr)
        if root:
            yield from self._walk(ctx, root, level=0, prefix=0)

    # -- internals -------------------------------------------------------------------

    def _walk(self, ctx: NodeContext, node: int, level: int, prefix: int) -> Iterator[Tuple[int, int]]:
        for slot in range(self.fanout):
            value = ctx.atomic_load(node + slot * 8)
            if value == 0:
                continue
            key_part = (prefix << self.fanout_bits) | slot
            if level == self.levels - 1:
                yield key_part, value
            else:
                yield from self._walk(ctx, value, level + 1, key_part)

    def _descend(self, ctx: NodeContext, key: int, create: bool) -> Optional[int]:
        """Walk to the leaf slot for ``key``; returns its address."""
        node = ctx.atomic_load(self.root_ptr_addr)
        if node == 0:
            if not create:
                return None
            node = self._install_node(ctx, self.root_ptr_addr)
        for level in range(self.levels - 1):
            shift = (self.levels - 1 - level) * self.fanout_bits
            slot_addr = node + ((key >> shift) & (self.fanout - 1)) * 8
            child = ctx.atomic_load(slot_addr)
            if child == 0:
                if not create:
                    return None
                child = self._install_node(ctx, slot_addr)
            node = child
        return node + (key & (self.fanout - 1)) * 8

    def _install_node(self, ctx: NodeContext, parent_slot: int) -> int:
        """Allocate a zeroed interior node and CAS it into the parent."""
        fresh = self.heap.alloc(ctx, self.node_bytes)
        ctx.store(fresh, bytes(self.node_bytes), bypass_cache=True)
        swapped, winner = ctx.cas(parent_slot, 0, fresh)
        if swapped:
            return fresh
        self.heap.free(ctx, fresh)  # another node raced us; use theirs
        return winner

    def _check_key(self, key: int) -> None:
        if key < 0 or key >> self.key_bits:
            raise RadixError(f"key {key:#x} outside {self.key_bits}-bit space")
