"""Shared hash tables under the three synchronisation disciplines (§3.2).

* :class:`LockedHashMap` — data and lock both in global memory.  Every
  operation takes an interconnect round trip for the lock plus
  invalidate/flush traffic for the buckets.  The strawman E3 ablates.
* :class:`ReplicatedDict` — node-replication: a local Python dict per
  node, mutations through the shared op log.  Reads are local.
* :class:`DelegatedDict` — key space partitioned across owner nodes;
  remote partitions are reached through delegation mailboxes.

All three expose the same ``put/get/delete`` surface so benchmarks swap
them freely.
"""

from __future__ import annotations

import hashlib
import pickle
import struct
from typing import Any, Dict, List, Optional

from ...rack.machine import NodeContext
from ..sync.delegation import DelegationService
from ..sync.oplog import OperationLog
from ..sync.replication import NodeReplication
from ..sync.spinlock import GlobalSpinLock

_EMPTY, _USED, _TOMB = 0, 1, 2


def stable_hash(key: bytes) -> int:
    """Deterministic 64-bit key hash (Python's hash() is salted per run)."""
    return struct.unpack("<Q", hashlib.blake2b(key, digest_size=8).digest())[0]


class HashMapError(Exception):
    pass


class MapFullError(HashMapError):
    pass


class LockedHashMap:
    """Open-addressing table in global memory behind one global spinlock.

    Bucket layout::

        +0    state (0 empty / 1 used / 2 tombstone)
        +8    key hash
        +16   key length (u32) | value length (u32)
        +24   key bytes   (key_capacity)
        +24+K value bytes (value_capacity)
    """

    _BUCKET_META = 24

    def __init__(
        self,
        base: int,
        capacity: int,
        key_capacity: int = 64,
        value_capacity: int = 256,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.base = base
        self.capacity = capacity
        self.key_capacity = key_capacity
        self.value_capacity = value_capacity
        self.bucket_size = _align8(self._BUCKET_META + key_capacity + value_capacity)
        self.lock = GlobalSpinLock(base)
        self._buckets_base = base + 64

    @staticmethod
    def region_size(capacity: int, key_capacity: int = 64, value_capacity: int = 256) -> int:
        return 64 + capacity * _align8(24 + key_capacity + value_capacity)

    def format(self, ctx: NodeContext) -> "LockedHashMap":
        self.lock.format(ctx)
        for idx in range(self.capacity):
            ctx.atomic_store(self._bucket(idx), _EMPTY)
        return self

    def put(self, ctx: NodeContext, key: bytes, value: bytes) -> None:
        self._check_sizes(key, value)
        with self.lock.held(ctx):
            idx = self._probe(ctx, key, for_insert=True)
            if idx is None:
                raise MapFullError("no free bucket")
            bucket = self._bucket(idx)
            ctx.atomic_store(bucket + 8, stable_hash(key))
            ctx.store(bucket + 16, struct.pack("<II", len(key), len(value)))
            ctx.store(bucket + self._BUCKET_META, key)
            ctx.store(bucket + self._BUCKET_META + self.key_capacity, value)
            ctx.flush(bucket + 16, 8 + self.key_capacity + self.value_capacity)
            ctx.fence()
            ctx.atomic_store(bucket, _USED)

    def get(self, ctx: NodeContext, key: bytes) -> Optional[bytes]:
        with self.lock.held(ctx):
            idx = self._probe(ctx, key, for_insert=False)
            if idx is None:
                return None
            bucket = self._bucket(idx)
            ctx.invalidate(bucket + 16, 8)
            _, vlen = struct.unpack("<II", ctx.load(bucket + 16, 8))
            val_off = bucket + self._BUCKET_META + self.key_capacity
            ctx.invalidate(val_off, vlen)
            return ctx.load(val_off, vlen)

    def delete(self, ctx: NodeContext, key: bytes) -> bool:
        with self.lock.held(ctx):
            idx = self._probe(ctx, key, for_insert=False)
            if idx is None:
                return False
            ctx.atomic_store(self._bucket(idx), _TOMB)
            return True

    def _probe(self, ctx: NodeContext, key: bytes, for_insert: bool) -> Optional[int]:
        h = stable_hash(key)
        first_tomb = None
        for step in range(self.capacity):
            idx = (h + step) % self.capacity
            bucket = self._bucket(idx)
            state = ctx.atomic_load(bucket)
            if state == _EMPTY:
                if for_insert:
                    return idx if first_tomb is None else first_tomb
                return None
            if state == _TOMB:
                if first_tomb is None:
                    first_tomb = idx
                continue
            if ctx.atomic_load(bucket + 8) == h and self._key_matches(ctx, bucket, key):
                return idx
        if for_insert:
            return first_tomb
        return None

    def _key_matches(self, ctx: NodeContext, bucket: int, key: bytes) -> bool:
        ctx.invalidate(bucket + 16, 8)
        klen, _ = struct.unpack("<II", ctx.load(bucket + 16, 8))
        if klen != len(key):
            return False
        ctx.invalidate(bucket + self._BUCKET_META, klen)
        return ctx.load(bucket + self._BUCKET_META, klen) == key

    def _check_sizes(self, key: bytes, value: bytes) -> None:
        if len(key) > self.key_capacity:
            raise HashMapError(f"key of {len(key)} B exceeds capacity {self.key_capacity}")
        if len(value) > self.value_capacity:
            raise HashMapError(f"value of {len(value)} B exceeds capacity {self.value_capacity}")

    def _bucket(self, idx: int) -> int:
        return self._buckets_base + idx * self.bucket_size


class ReplicatedDict:
    """dict semantics through node replication: local reads, logged writes."""

    def __init__(self, log: OperationLog) -> None:
        self.nr: NodeReplication[Dict[bytes, bytes]] = NodeReplication(
            log, factory=dict, apply_fn=self._apply
        )

    @staticmethod
    def _apply(state: Dict[bytes, bytes], op: Any) -> Any:
        verb = op[0]
        if verb == "put":
            state[op[1]] = op[2]
            return None
        if verb == "del":
            return state.pop(op[1], None) is not None
        raise HashMapError(f"unknown op {verb!r}")

    def put(self, ctx: NodeContext, key: bytes, value: bytes) -> None:
        self.nr.replica(ctx).execute(ctx, ("put", key, value))

    def get(self, ctx: NodeContext, key: bytes) -> Optional[bytes]:
        return self.nr.replica(ctx).read(ctx, lambda state: state.get(key))

    def get_local(self, ctx: NodeContext, key: bytes) -> Optional[bytes]:
        """Stale-tolerant read with zero log traffic."""
        return self.nr.replica(ctx).read_local(lambda state: state.get(key))

    def delete(self, ctx: NodeContext, key: bytes) -> bool:
        return bool(self.nr.replica(ctx).execute(ctx, ("del", key)))


class DelegatedDict:
    """dict semantics partitioned across owner nodes via delegation.

    Partition ``i`` lives in owner node ``owners[i]``'s private Python
    dict; other nodes reach it through that owner's mailbox service.
    ``call`` needs both contexts because the simulator drives the owner
    explicitly.
    """

    def __init__(
        self,
        region_base: int,
        owners: List[int],
        n_nodes: int,
        payload_capacity: int = 1024,
    ) -> None:
        self.owners = owners
        self._parts: List[Dict[bytes, bytes]] = [dict() for _ in owners]
        self.services: List[DelegationService] = []
        offset = region_base
        for part_idx, owner in enumerate(owners):
            svc = DelegationService(
                offset,
                owner_node=owner,
                n_nodes=n_nodes,
                handler=self._make_handler(part_idx),
                payload_capacity=payload_capacity,
            )
            self.services.append(svc)
            offset += DelegationService.region_size(n_nodes, payload_capacity)
        self.region_end = offset

    @staticmethod
    def region_size(n_partitions: int, n_nodes: int, payload_capacity: int = 1024) -> int:
        return n_partitions * DelegationService.region_size(n_nodes, payload_capacity)

    def format(self, ctx: NodeContext) -> "DelegatedDict":
        for svc in self.services:
            svc.format(ctx)
        return self

    def _make_handler(self, part_idx: int):
        def handler(request: bytes) -> bytes:
            op = pickle.loads(request)
            part = self._parts[part_idx]
            if op[0] == "put":
                part[op[1]] = op[2]
                return pickle.dumps(None)
            if op[0] == "get":
                return pickle.dumps(part.get(op[1]))
            if op[0] == "del":
                return pickle.dumps(part.pop(op[1], None) is not None)
            raise HashMapError(f"unknown op {op[0]!r}")

        return handler

    def partition_of(self, key: bytes) -> int:
        return stable_hash(key) % len(self.owners)

    def _invoke(self, ctx: NodeContext, owner_ctx: NodeContext, key: bytes, op: tuple) -> Any:
        part_idx = self.partition_of(key)
        svc = self.services[part_idx]
        if ctx.node_id == svc.owner_node:
            # local partition: operate directly, no mailbox traffic
            ctx.advance(svc.handler_cost_ns)
            return pickle.loads(svc.handler(pickle.dumps(op)))
        return pickle.loads(svc.call(ctx, owner_ctx, pickle.dumps(op)))

    def put(self, ctx: NodeContext, owner_ctx: NodeContext, key: bytes, value: bytes) -> None:
        self._invoke(ctx, owner_ctx, key, ("put", key, value))

    def get(self, ctx: NodeContext, owner_ctx: NodeContext, key: bytes) -> Optional[bytes]:
        return self._invoke(ctx, owner_ctx, key, ("get", key))

    def delete(self, ctx: NodeContext, owner_ctx: NodeContext, key: bytes) -> bool:
        return bool(self._invoke(ctx, owner_ctx, key, ("del", key)))


def _align8(value: int) -> int:
    return (value + 7) & ~7
