"""FlacDK level 3: high-level concurrent shared data structures (§3.2).

Ring buffer (IPC data plane), shared vector, hash tables under the three
synchronisation disciplines, and the radix tree that indexes page tables
and the page cache.
"""

from .hashmap import (
    DelegatedDict,
    HashMapError,
    LockedHashMap,
    MapFullError,
    ReplicatedDict,
    stable_hash,
)
from .radixtree import RadixError, SharedRadixTree
from .ringbuffer import RingError, SpscRing
from .vector import SharedVector, VectorError, VectorFullError

__all__ = [
    "DelegatedDict",
    "HashMapError",
    "LockedHashMap",
    "MapFullError",
    "RadixError",
    "ReplicatedDict",
    "RingError",
    "SharedRadixTree",
    "SharedVector",
    "SpscRing",
    "VectorError",
    "VectorFullError",
    "stable_hash",
]
