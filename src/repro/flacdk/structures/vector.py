"""Append-mostly shared vector of fixed-size records (§3.2).

Appenders reserve an index with one fetch-add, write the record, flush,
and commit with an atomic per-record word — the same publish discipline
as the operation log, but with random access.  Records can be updated in
place afterwards by an owner who coordinates through higher-level sync.

Layout::

    +0    count (records reserved, atomic)
    +8    capacity
    +16   record size
    +64   records

Record layout::

    +0    commit word (0 = in flight, 1 = committed)
    +8    payload (record_size bytes)
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ...rack.machine import NodeContext

_HEADER = 64
_REC_META = 8


class VectorError(Exception):
    pass


class VectorFullError(VectorError):
    pass


class SharedVector:
    """Bounded shared vector; every node may append and read."""

    def __init__(self, base: int, capacity: int, record_size: int) -> None:
        if capacity < 1 or record_size < 1:
            raise ValueError("capacity and record size must be >= 1")
        self.base = base
        self.capacity = capacity
        self.record_size = record_size
        self.slot_size = _align8(_REC_META + record_size)

    @staticmethod
    def region_size(capacity: int, record_size: int) -> int:
        return _HEADER + capacity * _align8(_REC_META + record_size)

    def format(self, ctx: NodeContext) -> "SharedVector":
        ctx.atomic_store(self.base, 0)
        ctx.atomic_store(self.base + 8, self.capacity)
        ctx.atomic_store(self.base + 16, self.record_size)
        for idx in range(self.capacity):
            ctx.atomic_store(self._slot(idx), 0)
        return self

    def append(self, ctx: NodeContext, record: bytes) -> int:
        """Append one record; returns its index."""
        self._check_record(record)
        idx = ctx.fetch_add(self.base, 1)
        if idx >= self.capacity:
            raise VectorFullError(f"vector at {self.base:#x} full ({self.capacity})")
        slot = self._slot(idx)
        ctx.store(slot + _REC_META, record)
        ctx.flush(slot + _REC_META, self.record_size)
        ctx.fence()
        ctx.atomic_store(slot, 1)
        return idx

    def get(self, ctx: NodeContext, idx: int) -> Optional[bytes]:
        """Read record ``idx``; None while the append is still in flight."""
        slot = self._slot(self._check_idx(idx))
        if ctx.atomic_load(slot) == 0:
            return None
        ctx.invalidate(slot + _REC_META, self.record_size)
        return ctx.load(slot + _REC_META, self.record_size)

    def update(self, ctx: NodeContext, idx: int, record: bytes) -> None:
        """Overwrite a committed record (caller provides mutual exclusion)."""
        self._check_record(record)
        slot = self._slot(self._check_idx(idx))
        if ctx.atomic_load(slot) == 0:
            raise VectorError(f"record {idx} was never committed")
        ctx.store(slot + _REC_META, record)
        ctx.flush(slot + _REC_META, self.record_size)

    def __len__(self) -> int:
        raise TypeError("use count(ctx): the length lives in shared memory")

    def count(self, ctx: NodeContext) -> int:
        return min(ctx.atomic_load(self.base), self.capacity)

    def scan(self, ctx: NodeContext) -> Iterator[Tuple[int, bytes]]:
        """Yield committed records in index order, skipping in-flight ones."""
        for idx in range(self.count(ctx)):
            record = self.get(ctx, idx)
            if record is not None:
                yield idx, record

    def _check_idx(self, idx: int) -> int:
        if not 0 <= idx < self.capacity:
            raise VectorError(f"index {idx} outside capacity {self.capacity}")
        return idx

    def _check_record(self, record: bytes) -> None:
        if len(record) != self.record_size:
            raise VectorError(
                f"record of {len(record)} B does not match record size {self.record_size}"
            )

    def _slot(self, idx: int) -> int:
        return self.base + _HEADER + idx * self.slot_size


def _align8(value: int) -> int:
    return (value + 7) & ~7
