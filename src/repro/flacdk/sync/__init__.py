"""FlacDK level 2: synchronisation interfaces (§3.2).

Locking (:class:`GlobalSpinLock` — possible but discouraged) and the
three lock-free families the paper co-designs for non-coherent shared
memory: replication (:class:`NodeReplication`), delegation
(:class:`DelegationService`), and quiescence/RCU (:class:`RcuCell`,
:class:`VersionChain`), all over the shared :class:`OperationLog`.
"""

from .bounded import BoundedStaleCell, StalenessStats
from .delegation import DelegationError, DelegationService
from .oplog import LogError, LogFullError, OperationLog
from .quiescence import RcuCell, RcuError, VersionChain
from .replication import Codec, NodeReplication, Replica
from .spinlock import GlobalSpinLock, LockTimeoutError, SpinLockStats

__all__ = [
    "BoundedStaleCell",
    "Codec",
    "DelegationError",
    "DelegationService",
    "GlobalSpinLock",
    "LockTimeoutError",
    "LogError",
    "LogFullError",
    "NodeReplication",
    "OperationLog",
    "RcuCell",
    "RcuError",
    "Replica",
    "SpinLockStats",
    "StalenessStats",
    "VersionChain",
]
