"""Lock-based synchronisation on global memory — the strawman (§2.2).

Locks *can* be built on a non-coherent rack because the atomic
instructions bypass caches, but every acquire/release is a full
interconnect round trip and contended acquires hammer one memory word
from every node.  FlacDK provides the lock for completeness (and for the
E3 ablation that shows why the paper avoids it); the lock-free families
in this package are the recommended tools.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass

from ...rack.machine import NodeContext

_UNLOCKED = 0


class LockTimeoutError(Exception):
    """acquire() exhausted its spin budget.

    In this simulator nodes are driven cooperatively, so a lock held by
    another node cannot be released while we spin — blocking forever
    would deadlock the host process.  Callers either use try_acquire in
    their own scheduling loop or accept this exception.
    """


@dataclass
class SpinLockStats:
    acquires: int = 0
    failed_attempts: int = 0
    releases: int = 0


class GlobalSpinLock:
    """A test-and-set lock on one word of global memory."""

    def __init__(self, addr: int, backoff_ns: float = 200.0, max_backoff_ns: float = 6400.0) -> None:
        self.addr = addr
        self.backoff_ns = backoff_ns
        self.max_backoff_ns = max_backoff_ns
        self.stats = SpinLockStats()

    def format(self, ctx: NodeContext) -> "GlobalSpinLock":
        ctx.atomic_store(self.addr, _UNLOCKED)
        return self

    def try_acquire(self, ctx: NodeContext) -> bool:
        """One CAS attempt; charges the atomic round trip either way."""
        swapped, _ = ctx.cas(self.addr, _UNLOCKED, self._tag(ctx))
        if swapped:
            self.stats.acquires += 1
        else:
            self.stats.failed_attempts += 1
        return swapped

    def acquire(self, ctx: NodeContext, max_spins: int = 64) -> None:
        """Spin with exponential backoff up to ``max_spins`` attempts."""
        backoff = self.backoff_ns
        for _ in range(max_spins):
            if self.try_acquire(ctx):
                return
            ctx.advance(backoff)
            backoff = min(backoff * 2, self.max_backoff_ns)
        raise LockTimeoutError(f"lock at {self.addr:#x} still held after {max_spins} attempts")

    def release(self, ctx: NodeContext) -> None:
        holder = ctx.atomic_load(self.addr)
        if holder != self._tag(ctx):
            raise RuntimeError(
                f"node {ctx.node_id} releasing lock at {self.addr:#x} held by tag {holder}"
            )
        ctx.atomic_store(self.addr, _UNLOCKED)
        self.stats.releases += 1

    def holder_tag(self, ctx: NodeContext) -> int:
        """0 when free, otherwise the holder's tag (node id + 1)."""
        return ctx.atomic_load(self.addr)

    def force_release(self, ctx: NodeContext) -> None:
        """Break the lock (recovery path after the holder crashed)."""
        ctx.atomic_store(self.addr, _UNLOCKED)

    @contextmanager
    def held(self, ctx: NodeContext, max_spins: int = 64):
        self.acquire(ctx, max_spins=max_spins)
        try:
            yield
        finally:
            self.release(ctx)

    @staticmethod
    def _tag(ctx: NodeContext) -> int:
        return ctx.node_id + 1
