"""Shared operation log: the backbone of replication-based sync (§3.2).

Writers on any node reserve a slot with one atomic fetch-add, write the
payload with cached stores, flush, and only then set the slot's commit
word with a cache-bypassing atomic store.  Readers poll commit words
atomically and invalidate/load payloads, so the log is correct on
non-coherent memory by construction.

Each entry carries the producer's simulated timestamp; consumers sync
their clocks to it, preserving causality in the cost model.

Layout at ``base``::

    +0    magic
    +8    tail (entries reserved so far)
    +16   capacity (entries)
    +24   entry payload capacity (bytes)
    +64   entries

Entry layout::

    +0    commit word (0 = in flight, index+1 = committed)
    +8    producer timestamp (f64 bits)
    +16   payload length (u32) + pad
    +24   payload
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional, Tuple

from ...rack.machine import NodeContext

_MAGIC = 0x10C_0F_0B5
_HEADER = 64
_ENTRY_META = 24


class LogError(Exception):
    pass


class LogFullError(LogError):
    """The log ran out of slots; compact (reset) before appending more."""


class OperationLog:
    """A bounded, append-only multi-producer log in shared memory."""

    def __init__(self, base: int, capacity: int, payload_capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("log capacity must be >= 1")
        if payload_capacity < 1:
            raise ValueError("payload capacity must be >= 1")
        self.base = base
        self.capacity = capacity
        self.payload_capacity = payload_capacity
        self.entry_size = _align8(_ENTRY_META + payload_capacity)

    @staticmethod
    def region_size(capacity: int, payload_capacity: int = 256) -> int:
        return _HEADER + capacity * _align8(_ENTRY_META + payload_capacity)

    def format(self, ctx: NodeContext) -> "OperationLog":
        ctx.atomic_store(self.base + 8, 0)
        ctx.atomic_store(self.base + 16, self.capacity)
        ctx.atomic_store(self.base + 24, self.payload_capacity)
        for idx in range(self.capacity):
            ctx.atomic_store(self._entry_addr(idx), 0)
        ctx.atomic_store(self.base, _MAGIC)
        return self

    # -- producing ---------------------------------------------------------------

    def append(self, ctx: NodeContext, payload: bytes) -> int:
        """Append one entry; returns its index."""
        if len(payload) > self.payload_capacity:
            raise LogError(
                f"payload of {len(payload)} B exceeds entry capacity {self.payload_capacity}"
            )
        idx = ctx.fetch_add(self.base + 8, 1)
        if idx >= self.capacity:
            raise LogFullError(f"log at {self.base:#x} is full ({self.capacity} entries)")
        entry = self._entry_addr(idx)
        meta = struct.pack("<dI4x", ctx.now(), len(payload))
        ctx.store(entry + 8, meta + payload)
        ctx.flush(entry + 8, len(meta) + len(payload))
        ctx.fence()
        ctx.atomic_store(entry, idx + 1)  # commit
        return idx

    # -- consuming -----------------------------------------------------------------

    def read(self, ctx: NodeContext, idx: int) -> Optional[bytes]:
        """Read entry ``idx``; ``None`` if not yet committed."""
        if not 0 <= idx < self.capacity:
            raise LogError(f"index {idx} outside log of {self.capacity}")
        entry = self._entry_addr(idx)
        if ctx.atomic_load(entry) != idx + 1:
            return None
        meta = _read_fresh(ctx, entry + 8, 16)
        ts, length = struct.unpack("<dI4x", meta)
        payload = _read_fresh(ctx, entry + _ENTRY_META, length)
        ctx.node.clock.sync_to(ts)
        return payload

    def reserved(self, ctx: NodeContext) -> int:
        """Entries reserved so far (some may still be uncommitted)."""
        return ctx.atomic_load(self.base + 8)

    def read_from(self, ctx: NodeContext, start: int) -> Iterator[Tuple[int, bytes]]:
        """Yield committed entries from ``start`` until the first gap."""
        idx = start
        while idx < self.capacity:
            payload = self.read(ctx, idx)
            if payload is None:
                return
            yield idx, payload
            idx += 1

    # -- compaction --------------------------------------------------------------------

    def reset(self, ctx: NodeContext) -> None:
        """Empty the log.  Caller must ensure every replica has applied
        all entries (see NodeReplication.compact)."""
        for idx in range(min(self.reserved(ctx), self.capacity)):
            ctx.atomic_store(self._entry_addr(idx), 0)
        ctx.atomic_store(self.base + 8, 0)

    def _entry_addr(self, idx: int) -> int:
        return self.base + _HEADER + idx * self.entry_size


def _read_fresh(ctx: NodeContext, addr: int, size: int) -> bytes:
    ctx.invalidate(addr, size)
    return ctx.load(addr, size)


def _align8(value: int) -> int:
    return (value + 7) & ~7
