"""Replication-based synchronisation (§3.2; NrOS [4], predictive logs [53]).

Every node keeps a *local replica* of the shared object in its own
memory; mutations are serialised through the shared
:class:`~repro.flacdk.sync.oplog.OperationLog` and replayed on each
replica.  The common path — reads, and replays of already-fetched ops —
touches only local state, which is exactly why this family wins on
high-latency, non-coherent global memory.

Operations are arbitrary picklable Python values; the state machine
supplied by the caller interprets them.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Dict, Generic, TypeVar

from ...rack.machine import NodeContext
from .oplog import OperationLog

S = TypeVar("S")


class Codec:
    """Pluggable op serialisation; the default is pickle."""

    @staticmethod
    def dumps(op: Any) -> bytes:
        return pickle.dumps(op, protocol=pickle.HIGHEST_PROTOCOL)

    @staticmethod
    def loads(data: bytes) -> Any:
        return pickle.loads(data)


class NodeReplication(Generic[S]):
    """Coordinates one replicated object across the rack.

    ``factory`` builds an empty replica state; ``apply_fn(state, op)``
    mutates it and returns the op's result.  All replicas apply the same
    committed prefix of the log, so any two replicas that have replayed
    to the same index are identical.
    """

    def __init__(
        self,
        log: OperationLog,
        factory: Callable[[], S],
        apply_fn: Callable[[S, Any], Any],
        codec: Codec = Codec(),
        apply_cost_ns: float = 30.0,
    ) -> None:
        self.log = log
        self.factory = factory
        self.apply_fn = apply_fn
        self.codec = codec
        #: Software cost charged per op replayed (models the replay CPU time).
        self.apply_cost_ns = apply_cost_ns
        self._replicas: Dict[int, "Replica[S]"] = {}

    def replica(self, ctx: NodeContext) -> "Replica[S]":
        """The calling node's replica handle (created on first use)."""
        rep = self._replicas.get(ctx.node_id)
        if rep is None:
            rep = Replica(self, self.factory())
            self._replicas[ctx.node_id] = rep
        return rep

    def min_applied(self) -> int:
        """Lowest replay watermark across instantiated replicas."""
        if not self._replicas:
            return 0
        return min(rep.applied for rep in self._replicas.values())

    def compact(self, ctx: NodeContext) -> bool:
        """Reset the log if every replica has applied everything.

        Returns True when compaction happened.  (A production system
        snapshots instead; bounded tests drive all replicas to the tail
        first.)
        """
        reserved = self.log.reserved(ctx)
        if any(rep.applied < reserved for rep in self._replicas.values()):
            return False
        self.log.reset(ctx)
        for rep in self._replicas.values():
            rep.applied = 0
        return True


class _FailedOp:
    """A deterministic failure produced by apply_fn.

    Ops are appended to the log *before* they are applied, so an op that
    raises (e.g. creating a file that exists) is still replayed by every
    replica — and must fail identically everywhere.  The exception is
    captured as the op's result; only the node that issued the op
    re-raises it to its caller.
    """

    __slots__ = ("exc",)

    def __init__(self, exc: BaseException) -> None:
        self.exc = exc


class Replica(Generic[S]):
    """One node's view of the replicated object."""

    def __init__(self, nr: NodeReplication, state: S) -> None:
        self.nr = nr
        self.state = state
        self.applied = 0

    def execute(self, ctx: NodeContext, op: Any) -> Any:
        """Linearisable mutation: append to the shared log, then replay
        the committed prefix (including our own op) locally."""
        payload = self.nr.codec.dumps(op)
        idx = self.nr.log.append(ctx, payload)
        self._catch_up(ctx, through=idx)
        # our op's result was produced during catch-up (it replayed last)
        result = self._last_result
        if isinstance(result, _FailedOp):
            raise result.exc
        return result

    def read(self, ctx: NodeContext, query: Callable[[S], Any]) -> Any:
        """Linearisable read: replay everything committed, query locally."""
        self._catch_up(ctx)
        return query(self.state)

    def read_local(self, query: Callable[[S], Any]) -> Any:
        """Eventually-consistent read of the local replica (no log traffic)."""
        return query(self.state)

    def _catch_up(self, ctx: NodeContext, through: int = -1) -> None:
        self._last_result = None
        while True:
            payload = self.nr.log.read(ctx, self.applied) if self.applied < self.nr.log.capacity else None
            if payload is None:
                if through >= self.applied:
                    raise RuntimeError(
                        f"log gap at {self.applied} while replaying through {through}"
                    )
                return
            op = self.nr.codec.loads(payload)
            ctx.advance(self.nr.apply_cost_ns)
            try:
                self._last_result = self.nr.apply_fn(self.state, op)
            except Exception as exc:  # deterministic op failure: same on all replicas
                self._last_result = _FailedOp(exc)
            self.applied += 1
            if through >= 0 and self.applied > through:
                return
