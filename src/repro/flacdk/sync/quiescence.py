"""Quiescence-based synchronisation: RCU over shared memory (§3.2, [49]).

Writers never modify a published object in place.  They allocate a new
version, write and flush it, then atomically swing a pointer cell; the
old version is retired to the epoch reclaimer.  Readers atomically load
the pointer inside an epoch-announced section and invalidate/load the
version's bytes — the paper's observation ([49]) is that this converts
"which cache lines are stale?" into "which versions are still referenced?",
which *is* tractable on non-coherent memory.

Versions are length-prefixed heap blocks::

    +0   payload length (u32) + pad
    +8   payload
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

from ...rack.machine import NodeContext
from ..alloc.object_allocator import SharedHeap
from ..alloc.reclaim import EpochReclaimer

_VERSION_HEADER = 8


class RcuError(Exception):
    pass


class RcuCell:
    """A pointer to the current version of one shared object."""

    def __init__(self, ptr_addr: int, heap: SharedHeap, reclaimer: EpochReclaimer) -> None:
        self.ptr_addr = ptr_addr
        self.heap = heap
        self.reclaimer = reclaimer

    def format(self, ctx: NodeContext) -> "RcuCell":
        ctx.atomic_store(self.ptr_addr, 0)
        return self

    # -- write side --------------------------------------------------------------

    def publish(self, ctx: NodeContext, payload: bytes) -> int:
        """Install a new version; returns its address.

        The displaced version is retired, not freed: readers inside an
        epoch may still hold it.
        """
        version = self._make_version(ctx, payload)
        old = ctx.swap(self.ptr_addr, version)
        if old:
            self.reclaimer.retire(ctx, old, lambda addr: self.heap.free(ctx, addr))
        return version

    def update(self, ctx: NodeContext, fn: Callable[[Optional[bytes]], bytes]) -> bytes:
        """Read-copy-update: derive the new payload from the current one.

        Retries on CAS failure (another writer won the race).
        """
        while True:
            current = ctx.atomic_load(self.ptr_addr)
            snapshot = self._read_version(ctx, current) if current else None
            new_payload = fn(snapshot)
            version = self._make_version(ctx, new_payload)
            swapped, _ = ctx.cas(self.ptr_addr, current, version)
            if swapped:
                if current:
                    self.reclaimer.retire(ctx, current, lambda addr: self.heap.free(ctx, addr))
                return new_payload
            self.heap.free(ctx, version)  # lost the race; ours was never visible

    # -- read side ------------------------------------------------------------------

    def read(self, ctx: NodeContext) -> Optional[bytes]:
        """Epoch-protected snapshot of the current version (None if empty)."""
        self.reclaimer.enter(ctx)
        try:
            version = ctx.atomic_load(self.ptr_addr)
            if version == 0:
                return None
            return self._read_version(ctx, version)
        finally:
            self.reclaimer.exit(ctx)

    # -- internals ----------------------------------------------------------------------

    def _make_version(self, ctx: NodeContext, payload: bytes) -> int:
        version = self.heap.alloc(ctx, _VERSION_HEADER + len(payload))
        ctx.store(version, struct.pack("<I4x", len(payload)) + payload)
        ctx.flush(version, _VERSION_HEADER + len(payload))
        ctx.fence()
        return version

    def _read_version(self, ctx: NodeContext, version: int) -> bytes:
        ctx.invalidate(version, _VERSION_HEADER)
        length = struct.unpack("<I", ctx.load(version, 4))[0]
        ctx.invalidate(version + _VERSION_HEADER, length)
        return ctx.load(version + _VERSION_HEADER, length)


class VersionChain:
    """Multi-version object keeping the last ``depth`` versions reachable.

    Used by checkpointing (§3.2): a checkpoint pins an epoch and walks
    the chain for the version that was current at pin time, while writers
    keep publishing.  Chain entries are heap blocks::

        +0   previous version address
        +8   publish epoch
        +16  payload length (u32) + pad
        +24  payload
    """

    _HDR = 24

    def __init__(self, ptr_addr: int, heap: SharedHeap, reclaimer: EpochReclaimer, depth: int = 4) -> None:
        if depth < 1:
            raise ValueError("chain depth must be >= 1")
        self.ptr_addr = ptr_addr
        self.heap = heap
        self.reclaimer = reclaimer
        self.depth = depth

    def format(self, ctx: NodeContext) -> "VersionChain":
        ctx.atomic_store(self.ptr_addr, 0)
        return self

    def publish(self, ctx: NodeContext, payload: bytes) -> int:
        head = ctx.atomic_load(self.ptr_addr)
        epoch = self.reclaimer.current_epoch(ctx)
        block = self.heap.alloc(ctx, self._HDR + len(payload))
        header = struct.pack("<QQI4x", head, epoch, len(payload))
        ctx.store(block, header + payload)
        ctx.flush(block, self._HDR + len(payload))
        ctx.fence()
        ctx.atomic_store(self.ptr_addr, block)
        self._trim(ctx, block)
        return block

    def read_latest(self, ctx: NodeContext) -> Optional[bytes]:
        head = ctx.atomic_load(self.ptr_addr)
        return self._payload(ctx, head) if head else None

    def read_at_epoch(self, ctx: NodeContext, epoch: int) -> Optional[bytes]:
        """Newest version published at or before ``epoch`` (checkpoint read)."""
        cursor = ctx.atomic_load(self.ptr_addr)
        while cursor:
            prev, published = self._header(ctx, cursor)
            if published <= epoch:
                return self._payload(ctx, cursor)
            cursor = prev
        return None

    def chain_length(self, ctx: NodeContext) -> int:
        n = 0
        cursor = ctx.atomic_load(self.ptr_addr)
        while cursor:
            n += 1
            cursor = self._header(ctx, cursor)[0]
        return n

    def _trim(self, ctx: NodeContext, head: int) -> None:
        """Retire versions beyond ``depth`` (they stay until epoch-safe)."""
        cursor = head
        for _ in range(self.depth - 1):
            prev = self._header(ctx, cursor)[0]
            if prev == 0:
                return
            cursor = prev
        # cursor is the oldest kept version; cut the chain after it
        tail = self._header(ctx, cursor)[0]
        if tail:
            ctx.store(cursor, struct.pack("<Q", 0))
            ctx.flush(cursor, 8)
            while tail:
                older = self._header(ctx, tail)[0]
                self.reclaimer.retire(ctx, tail, lambda addr: self.heap.free(ctx, addr))
                tail = older

    def _header(self, ctx: NodeContext, block: int) -> tuple:
        ctx.invalidate(block, 16)
        return struct.unpack("<QQ", ctx.load(block, 16))

    def _payload(self, ctx: NodeContext, block: int) -> bytes:
        ctx.invalidate(block + 16, 8)
        length = struct.unpack("<I", ctx.load(block + 16, 4))[0]
        ctx.invalidate(block + self._HDR, length)
        return ctx.load(block + self._HDR, length)
