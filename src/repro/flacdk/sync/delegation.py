"""Delegation-based synchronisation (§3.2; flat combining [20], ffwd [51]).

The shared object is owned by one node; other nodes write requests into
per-client mailboxes in global memory and the owner executes them on
their behalf against its *local* (fast, private) state.  Contention on
shared memory is restricted to one request/response slot per client —
no shared data structure is ever traversed remotely.

Because the simulator drives nodes cooperatively, the owner must be
polled explicitly (``poll``); ``call`` is a convenience that performs
the whole round trip when the caller holds both contexts, charging
clocks causally at each hand-off.

Mailbox layout per client node::

    +0    request sequence   (atomic; client bumps after writing payload)
    +8    response sequence  (atomic; owner bumps after writing response)
    +16   request timestamp  (f64 bits)
    +24   response timestamp (f64 bits)
    +32   request length  (u32) + pad
    +40   response length (u32) + pad
    +48   request payload
    +48+P response payload
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from ...rack.machine import NodeContext

_SLOT_META = 48


class DelegationError(Exception):
    pass


class DelegationService:
    """One delegated object: an owner node plus per-client mailboxes."""

    def __init__(
        self,
        base: int,
        owner_node: int,
        n_nodes: int,
        handler: Callable[[bytes], bytes],
        payload_capacity: int = 1024,
        handler_cost_ns: float = 50.0,
    ) -> None:
        self.base = base
        self.owner_node = owner_node
        self.n_nodes = n_nodes
        self.handler = handler
        self.payload_capacity = payload_capacity
        self.handler_cost_ns = handler_cost_ns
        self.slot_size = _align64(_SLOT_META + 2 * payload_capacity)
        self.served = 0
        self._last_seen: Dict[int, int] = {}

    @staticmethod
    def region_size(n_nodes: int, payload_capacity: int = 1024) -> int:
        return n_nodes * _align64(_SLOT_META + 2 * payload_capacity)

    def format(self, ctx: NodeContext) -> "DelegationService":
        for node in range(self.n_nodes):
            slot = self._slot(node)
            ctx.atomic_store(slot, 0)
            ctx.atomic_store(slot + 8, 0)
        return self

    # -- client side -------------------------------------------------------------

    def submit(self, ctx: NodeContext, payload: bytes) -> int:
        """Place a request in this node's mailbox; returns its sequence.

        The previous request must have been answered (one outstanding
        request per client, like ffwd).
        """
        if len(payload) > self.payload_capacity:
            raise DelegationError(f"request of {len(payload)} B exceeds slot capacity")
        slot = self._slot(ctx.node_id)
        req_seq = ctx.atomic_load(slot)
        resp_seq = ctx.atomic_load(slot + 8)
        if req_seq != resp_seq:
            raise DelegationError(f"node {ctx.node_id} already has request {req_seq} in flight")
        meta = struct.pack("<dI4x", ctx.now(), len(payload))
        ctx.store(slot + 16, meta[:8])  # request timestamp
        ctx.store(slot + 32, meta[8:])  # request length
        ctx.store(slot + 48, payload)
        ctx.flush(slot + 16, 32 + len(payload))
        ctx.fence()
        ctx.atomic_store(slot, req_seq + 1)
        return req_seq + 1

    def try_response(self, ctx: NodeContext, seq: int) -> Optional[bytes]:
        """Fetch the response to request ``seq`` if the owner answered."""
        slot = self._slot(ctx.node_id)
        if ctx.atomic_load(slot + 8) < seq:
            return None
        ctx.invalidate(slot + 24, 24)
        ts = struct.unpack("<d", ctx.load(slot + 24, 8))[0]
        length = struct.unpack("<I", ctx.load(slot + 40, 4))[0]
        resp_off = slot + 48 + self.payload_capacity
        ctx.invalidate(resp_off, length)
        data = ctx.load(resp_off, length)
        ctx.node.clock.sync_to(ts)
        return data

    # -- owner side ----------------------------------------------------------------

    def poll(self, owner_ctx: NodeContext) -> int:
        """Serve every pending request; returns how many were served."""
        if owner_ctx.node_id != self.owner_node:
            raise DelegationError(
                f"node {owner_ctx.node_id} polling a service owned by {self.owner_node}"
            )
        served = 0
        for node in range(self.n_nodes):
            slot = self._slot(node)
            req_seq = owner_ctx.atomic_load(slot)
            resp_seq = owner_ctx.atomic_load(slot + 8)
            if req_seq == resp_seq:
                continue
            owner_ctx.invalidate(slot + 16, 24)
            req_ts = struct.unpack("<d", owner_ctx.load(slot + 16, 8))[0]
            length = struct.unpack("<I", owner_ctx.load(slot + 32, 4))[0]
            owner_ctx.invalidate(slot + 48, length)
            request = owner_ctx.load(slot + 48, length)
            owner_ctx.node.clock.sync_to(req_ts)
            owner_ctx.advance(self.handler_cost_ns)
            response = self.handler(request)
            if len(response) > self.payload_capacity:
                raise DelegationError("handler response exceeds slot capacity")
            resp_off = slot + 48 + self.payload_capacity
            owner_ctx.store(slot + 24, struct.pack("<d", owner_ctx.now()))
            owner_ctx.store(slot + 40, struct.pack("<I", len(response)))
            owner_ctx.store(resp_off, response)
            owner_ctx.flush(slot + 24, 24)
            owner_ctx.flush(resp_off, len(response))
            owner_ctx.fence()
            owner_ctx.atomic_store(slot + 8, req_seq)
            served += 1
        self.served += served
        return served

    # -- synchronous convenience --------------------------------------------------------

    def call(self, client_ctx: NodeContext, owner_ctx: NodeContext, payload: bytes) -> bytes:
        """Submit, have the owner poll, and collect the response."""
        seq = self.submit(client_ctx, payload)
        self.poll(owner_ctx)
        response = self.try_response(client_ctx, seq)
        if response is None:
            raise DelegationError("owner polled but produced no response")
        return response

    def _slot(self, node_id: int) -> int:
        if not 0 <= node_id < self.n_nodes:
            raise DelegationError(f"node {node_id} outside service of {self.n_nodes} nodes")
        return self.base + node_id * self.slot_size


def _align64(value: int) -> int:
    return (value + 63) & ~63
