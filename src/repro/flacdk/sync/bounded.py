"""Bounded incoherence — the programming model of the paper's ref [49].

Between "always invalidate" (every read pays global latency) and "never
invalidate" (unbounded staleness) sits a contract many kernel consumers
actually want: *reads may be stale by at most T nanoseconds*.  A reader
keeps using its cached copy until the copy's age exceeds the bound, then
refreshes with one invalidate+load.  Monitoring data, load statistics,
routing hints, and registry lookups all tolerate bounded staleness —
and their reads become cache hits.

The cell carries a version word so consumers (and tests) can measure
the staleness they actually observed.

Layout::

    +0   version (atomic, bumped per write)
    +8   publish timestamp (f64 bits)
    +16  payload
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ...rack.machine import NodeContext

_HEADER = 16


@dataclass
class StalenessStats:
    fresh_reads: int = 0
    cached_reads: int = 0
    #: worst version lag ever observed by a refresh
    max_version_lag: int = 0


class BoundedStaleCell:
    """A shared value whose readers tolerate at most ``bound_ns`` staleness."""

    def __init__(self, base: int, capacity: int, bound_ns: float) -> None:
        if capacity < 1:
            raise ValueError("cell needs at least one payload byte")
        if bound_ns < 0:
            raise ValueError("staleness bound cannot be negative")
        self.base = base
        self.capacity = capacity
        self.bound_ns = bound_ns
        #: node -> (sim time of last refresh, version seen at refresh)
        self._last_refresh: Dict[int, Tuple[float, int]] = {}
        self.stats = StalenessStats()

    def format(self, ctx: NodeContext) -> "BoundedStaleCell":
        ctx.atomic_store(self.base, 0)
        ctx.store(self.base + 8, struct.pack("<d", 0.0), bypass_cache=True)
        return self

    # -- writer -------------------------------------------------------------------

    def write(self, ctx: NodeContext, payload: bytes) -> int:
        """Publish a new value; returns its version."""
        if len(payload) > self.capacity:
            raise ValueError(f"payload of {len(payload)} B exceeds capacity {self.capacity}")
        ctx.store(self.base + 8, struct.pack("<d", ctx.now()) )
        ctx.store(self.base + _HEADER, payload)
        ctx.flush(self.base + 8, 8 + len(payload) + _HEADER - 8)
        ctx.fence()
        version = ctx.fetch_add(self.base, 1) + 1
        # the writer's own cache is now authoritative for itself
        self._last_refresh[ctx.node_id] = (ctx.now(), version)
        return version

    # -- reader --------------------------------------------------------------------

    def read(self, ctx: NodeContext, size: Optional[int] = None) -> bytes:
        """Read within the staleness contract.

        Inside the bound: a plain cached load (cheap; may lag by up to
        ``bound_ns``).  Outside it: invalidate + load + version check.
        """
        size = self.capacity if size is None else size
        last = self._last_refresh.get(ctx.node_id)
        if last is not None and ctx.now() - last[0] <= self.bound_ns:
            self.stats.cached_reads += 1
            return ctx.load(self.base + _HEADER, size)
        return self._refresh(ctx, size)

    def read_fresh(self, ctx: NodeContext, size: Optional[int] = None) -> bytes:
        """Bypass the contract: always refresh (bound = 0 semantics)."""
        return self._refresh(ctx, self.capacity if size is None else size)

    def observed_version(self, ctx: NodeContext) -> int:
        """The version this node last refreshed to (0 = never)."""
        last = self._last_refresh.get(ctx.node_id)
        return last[1] if last else 0

    def current_version(self, ctx: NodeContext) -> int:
        return ctx.atomic_load(self.base)

    def version_lag(self, ctx: NodeContext) -> int:
        """How many writes behind this node's view may be right now."""
        return self.current_version(ctx) - self.observed_version(ctx)

    def _refresh(self, ctx: NodeContext, size: int) -> bytes:
        previous = self.observed_version(ctx)
        version = ctx.atomic_load(self.base)
        ctx.invalidate(self.base + 8, 8 + size + _HEADER - 8)
        data = ctx.load(self.base + _HEADER, size)
        self._last_refresh[ctx.node_id] = (ctx.now(), version)
        self.stats.fresh_reads += 1
        self.stats.max_version_lag = max(self.stats.max_version_lag, version - previous)
        return data
