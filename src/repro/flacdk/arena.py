"""Static carving of a shared-memory range into regions.

Boot-time layout decisions (where the heap, logs, rings, and tables
live) are made once by the node that formats the structures and shared
via well-known addresses; :class:`Arena` is that cursor.  It is not an
allocator — freeing happens at the object layer (:class:`SharedHeap`).
"""

from __future__ import annotations


class ArenaExhausted(Exception):
    pass


class Arena:
    """Hands out aligned, non-overlapping sub-ranges of ``[base, base+size)``."""

    def __init__(self, base: int, size: int) -> None:
        if size <= 0:
            raise ValueError("arena size must be positive")
        self.base = base
        self.size = size
        self._cursor = base

    def take(self, size: int, align: int = 64) -> int:
        """Reserve ``size`` bytes aligned to ``align``; returns the address."""
        if size <= 0:
            raise ValueError("region size must be positive")
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        start = (self._cursor + align - 1) & ~(align - 1)
        if start + size > self.base + self.size:
            raise ArenaExhausted(
                f"arena at {self.base:#x}: wanted {size} B, "
                f"{self.base + self.size - start} B left"
            )
        self._cursor = start + size
        return start

    @property
    def remaining(self) -> int:
        return self.base + self.size - self._cursor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Arena({self.base:#x}+{self.size:#x}, used={self._cursor - self.base:#x})"
