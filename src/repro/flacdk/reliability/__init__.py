"""FlacDK reliability mechanisms (§3.2).

The full fault-handling pipeline: monitoring, failure prediction, fault
detection (integrity + liveness), checkpointing integrated with epoch
reclamation, recovery by checkpoint restore + op-log replay, in-place
UE repair from redundancy sources, and background scrubbing with
predictor-driven proactive evacuation.
"""

from .checkpoint import Checkpoint, CheckpointManager, CheckpointStore
from .detection import ChecksumDetector, CorruptionReport, HeartbeatDetector
from .monitor import HealthMonitor, HealthSummary
from .prediction import FailurePredictor, PageRisk
from .recovery import LogReplayRecovery, RecoveryCoordinator, RecoveryReport
from .repair import MirrorSource, RepairCoordinator, RepairRecord, RepairSource, RepairStats
from .scrub import MemoryScrubber, ScrubStats

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointStore",
    "ChecksumDetector",
    "CorruptionReport",
    "FailurePredictor",
    "HealthMonitor",
    "HealthSummary",
    "HeartbeatDetector",
    "LogReplayRecovery",
    "MemoryScrubber",
    "MirrorSource",
    "PageRisk",
    "RecoveryCoordinator",
    "RecoveryReport",
    "RepairCoordinator",
    "RepairRecord",
    "RepairSource",
    "RepairStats",
    "ScrubStats",
]
