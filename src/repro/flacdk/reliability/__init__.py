"""FlacDK reliability mechanisms (§3.2).

The full fault-handling pipeline: monitoring, failure prediction, fault
detection (integrity + liveness), checkpointing integrated with epoch
reclamation, and recovery by checkpoint restore + op-log replay.
"""

from .checkpoint import Checkpoint, CheckpointManager, CheckpointStore
from .detection import ChecksumDetector, CorruptionReport, HeartbeatDetector
from .monitor import HealthMonitor, HealthSummary
from .prediction import FailurePredictor, PageRisk
from .recovery import LogReplayRecovery, RecoveryCoordinator, RecoveryReport

__all__ = [
    "Checkpoint",
    "CheckpointManager",
    "CheckpointStore",
    "ChecksumDetector",
    "CorruptionReport",
    "FailurePredictor",
    "HealthMonitor",
    "HealthSummary",
    "HeartbeatDetector",
    "LogReplayRecovery",
    "PageRisk",
    "RecoveryCoordinator",
    "RecoveryReport",
]
