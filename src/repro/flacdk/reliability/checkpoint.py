"""Checkpointing of shared-memory state (§3.2).

Checkpoints snapshot registered regions of rack memory into a store.
Two integrations with synchronisation keep the cost down, as the paper
prescribes:

* region checkpoints **pin an epoch** in the reclaimer, so multi-version
  objects referenced by the snapshot cannot be freed mid-checkpoint;
* log-backed state is checkpointed *by watermark* — the snapshot is just
  (state bytes, log index), and recovery replays the log suffix (see
  :mod:`.recovery`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ...rack.machine import NodeContext
from ..alloc.reclaim import EpochReclaimer


@dataclass(frozen=True)
class Checkpoint:
    """One consistent snapshot of a set of regions."""

    checkpoint_id: int
    taken_at_ns: float
    epoch: Optional[int]
    #: region base -> captured bytes
    regions: Dict[int, bytes]
    #: optional log watermark for replay-based recovery
    log_watermark: Optional[int] = None

    def crc(self) -> int:
        total = 0
        for base in sorted(self.regions):
            total = zlib.crc32(self.regions[base], total)
        return total


class CheckpointStore:
    """Holds checkpoints with a bounded history per subject."""

    def __init__(self, keep: int = 4) -> None:
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.keep = keep
        self._by_subject: Dict[str, List[Checkpoint]] = {}

    def put(self, subject: str, checkpoint: Checkpoint) -> None:
        history = self._by_subject.setdefault(subject, [])
        history.append(checkpoint)
        del history[: -self.keep]

    def latest(self, subject: str) -> Optional[Checkpoint]:
        history = self._by_subject.get(subject)
        return history[-1] if history else None

    def history(self, subject: str) -> List[Checkpoint]:
        return list(self._by_subject.get(subject, []))


@dataclass
class CheckpointManager:
    """Takes and restores region checkpoints.

    ``reclaimer`` is optional; when present every checkpoint pins the
    current epoch for its duration so concurrent retirements cannot free
    versions the snapshot walks.
    """

    store: CheckpointStore
    reclaimer: Optional[EpochReclaimer] = None
    #: fixed software cost charged per checkpoint, on top of memory reads
    overhead_ns: float = 2000.0
    _next_id: int = 1
    _registered: Dict[str, List[Tuple[int, int]]] = field(default_factory=dict)

    def register(self, subject: str, base: int, size: int) -> None:
        """Add a region to a subject's checkpoint set."""
        self._registered.setdefault(subject, []).append((base, size))

    def regions_of(self, subject: str) -> List[Tuple[int, int]]:
        return list(self._registered.get(subject, []))

    def take(
        self, ctx: NodeContext, subject: str, log_watermark: Optional[int] = None
    ) -> Checkpoint:
        """Capture all of ``subject``'s registered regions."""
        regions = self._registered.get(subject)
        if not regions:
            raise KeyError(f"no regions registered for subject {subject!r}")
        pin_slot = None
        epoch = None
        if self.reclaimer is not None:
            epoch = self.reclaimer.current_epoch(ctx)
            pin_slot = self.reclaimer.pin(ctx, epoch)
        try:
            ctx.advance(self.overhead_ns)
            captured = {
                base: ctx.load(base, size, bypass_cache=True) for base, size in regions
            }
        finally:
            if pin_slot is not None:
                self.reclaimer.unpin(ctx, pin_slot)
        checkpoint = Checkpoint(
            checkpoint_id=self._next_id,
            taken_at_ns=ctx.now(),
            epoch=epoch,
            regions=captured,
            log_watermark=log_watermark,
        )
        self._next_id += 1
        self.store.put(subject, checkpoint)
        return checkpoint

    def restore(self, ctx: NodeContext, subject: str, checkpoint: Optional[Checkpoint] = None) -> Checkpoint:
        """Write a checkpoint's bytes back into rack memory."""
        checkpoint = checkpoint or self.store.latest(subject)
        if checkpoint is None:
            raise KeyError(f"no checkpoint stored for subject {subject!r}")
        ctx.advance(self.overhead_ns)
        for base, data in checkpoint.regions.items():
            ctx.store(base, data, bypass_cache=True)
            ctx.invalidate(base, len(data))  # drop stale cached lines
        return checkpoint
