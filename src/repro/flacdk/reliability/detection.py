"""Fault detection (§3.2): integrity checksums and liveness heartbeats.

Two detectors cover the paper's fault taxonomy:

* :class:`ChecksumDetector` catches *silent* data corruption (bit flips
  that ECC missed) by keeping CRC32 sums of registered shared regions.
* :class:`HeartbeatDetector` catches node and link death: every node
  periodically bumps its heartbeat word in global memory; a watcher
  declares nodes whose word has not advanced within the timeout dead.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ...rack.machine import NodeContext
from ...rack.memory import UncorrectableMemoryError
from ...rack.node import NodeCrashedError


@dataclass
class CorruptionReport:
    region_base: int
    size: int
    expected_crc: int
    observed_crc: Optional[int]  # None when the read itself faulted (UE)


class ChecksumDetector:
    """CRC32-based integrity checking of shared-memory regions."""

    def __init__(self) -> None:
        self._sums: Dict[int, Tuple[int, int]] = {}  # base -> (size, crc)

    def protect(self, ctx: NodeContext, base: int, size: int) -> int:
        """Record the current checksum of ``[base, base+size)``."""
        data = ctx.load(base, size, bypass_cache=True)
        crc = zlib.crc32(data)
        self._sums[base] = (size, crc)
        return crc

    def verify(self, ctx: NodeContext, base: int) -> Optional[CorruptionReport]:
        """Re-checksum a protected region; None when intact."""
        try:
            size, expected = self._sums[base]
        except KeyError:
            raise KeyError(f"region {base:#x} was never protected") from None
        try:
            data = ctx.load(base, size, bypass_cache=True)
        except UncorrectableMemoryError:
            return CorruptionReport(base, size, expected, observed_crc=None)
        observed = zlib.crc32(data)
        if observed == expected:
            return None
        return CorruptionReport(base, size, expected, observed)

    def sweep(self, ctx: NodeContext) -> List[CorruptionReport]:
        """Verify every protected region; returns all corruption found."""
        reports = []
        for base in list(self._sums):
            report = self.verify(ctx, base)
            if report is not None:
                reports.append(report)
        return reports

    def unprotect(self, base: int) -> None:
        self._sums.pop(base, None)


class HeartbeatDetector:
    """Liveness detection over per-node heartbeat words in global memory.

    Each node's word holds its last-beat simulated timestamp (f64 bits);
    any node can scan all words and compare against its own clock.
    """

    def __init__(self, base: int, n_nodes: int, timeout_ns: float = 1e6) -> None:
        self.base = base
        self.n_nodes = n_nodes
        self.timeout_ns = timeout_ns

    @staticmethod
    def region_size(n_nodes: int) -> int:
        return 8 * n_nodes

    def format(self, ctx: NodeContext) -> "HeartbeatDetector":
        for node in range(self.n_nodes):
            ctx.atomic_store(self._word(node), 0)
        return self

    def beat(self, ctx: NodeContext) -> None:
        """Publish 'I am alive at my current time'."""
        ts_bits = struct.unpack("<Q", struct.pack("<d", ctx.now()))[0]
        ctx.atomic_store(self._word(ctx.node_id), ts_bits)

    def last_beat(self, ctx: NodeContext, node_id: int) -> float:
        bits = ctx.atomic_load(self._word(node_id))
        return struct.unpack("<d", struct.pack("<Q", bits))[0]

    def suspected_dead(self, ctx: NodeContext) -> List[int]:
        """Nodes whose heartbeat lags the observer by more than the timeout."""
        now = ctx.now()
        dead = []
        for node in range(self.n_nodes):
            if node == ctx.node_id:
                continue
            if now - self.last_beat(ctx, node) > self.timeout_ns:
                dead.append(node)
        return dead

    def confirm_dead(self, ctx: NodeContext, node_id: int) -> bool:
        """Actively probe: a crashed node cannot answer anything, but its
        machine state is authoritative in the simulator."""
        try:
            ctx.machine.nodes[node_id].check_alive()
            return False
        except NodeCrashedError:
            return True

    def _word(self, node_id: int) -> int:
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"node {node_id} outside detector of {self.n_nodes}")
        return self.base + node_id * 8
