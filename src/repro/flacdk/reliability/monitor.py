"""System health monitoring (§3.2): the front of the fault pipeline.

The monitor subscribes to the rack's fault log and aggregates events
into per-page and per-node counters over sliding windows.  Downstream,
the predictor consumes these series and the detectors cross-check data
integrity and liveness.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ...rack.faults import FaultEvent, FaultKind, FaultLog


@dataclass
class HealthSummary:
    """Aggregated view handed to operators and the predictor."""

    window_ns: float
    ce_total: int
    ue_total: int
    crashes: int
    link_events: int
    worst_pages: List[Tuple[int, int]]  # (page address, CE count), hottest first


class HealthMonitor:
    """Sliding-window aggregation of injected fault events."""

    def __init__(self, fault_log: FaultLog, page_size: int = 4096, window_ns: float = 1e9) -> None:
        self.page_size = page_size
        self.window_ns = window_ns
        self._events: Deque[FaultEvent] = deque()
        self._total_by_kind: Dict[FaultKind, int] = defaultdict(int)
        fault_log.subscribe(self._on_event)

    def _on_event(self, event: FaultEvent) -> None:
        self._events.append(event)
        self._total_by_kind[event.kind] += 1

    def _trim(self, now_ns: float) -> None:
        horizon = now_ns - self.window_ns
        while self._events and self._events[0].time_ns < horizon:
            self._events.popleft()

    # -- queries --------------------------------------------------------------

    def ce_count_by_page(self, now_ns: float) -> Dict[int, int]:
        """Correctable-error counts per page within the window."""
        self._trim(now_ns)
        counts: Dict[int, int] = defaultdict(int)
        for event in self._events:
            if event.kind is FaultKind.CORRECTABLE and event.addr is not None:
                counts[event.addr & ~(self.page_size - 1)] += 1
        return dict(counts)

    def events_in_window(self, now_ns: float, kind: Optional[FaultKind] = None) -> List[FaultEvent]:
        self._trim(now_ns)
        return [e for e in self._events if kind is None or e.kind is kind]

    def total(self, kind: FaultKind) -> int:
        """All-time count, regardless of window."""
        return self._total_by_kind.get(kind, 0)

    def summary(self, now_ns: float, top_pages: int = 5) -> HealthSummary:
        self._trim(now_ns)
        by_page = self.ce_count_by_page(now_ns)
        worst = sorted(by_page.items(), key=lambda kv: -kv[1])[:top_pages]
        kinds = defaultdict(int)
        for event in self._events:
            kinds[event.kind] += 1
        return HealthSummary(
            window_ns=self.window_ns,
            ce_total=kinds[FaultKind.CORRECTABLE],
            ue_total=kinds[FaultKind.UNCORRECTABLE],
            crashes=kinds[FaultKind.NODE_CRASH],
            link_events=kinds[FaultKind.LINK_DOWN] + kinds[FaultKind.LINK_UP],
            worst_pages=worst,
        )
