"""In-place repair of uncorrectable errors (§3.2/§3.6) — the *repair*
stage of the detect → contain → repair → prevent loop.

An uncorrectable error poisons device bytes; before this module the
only answers were surfacing :class:`~repro.rack.memory.UncorrectableMemoryError`
to the application or restoring a whole fault box.  The
:class:`RepairCoordinator` closes the gap: given a poisoned address it
consults *redundancy sources* in priority order, rewrites the poisoned
page with recovered bytes, clears the poison, and records the outcome
in the rack's fault log.  Wired as the machine's repair handler
(:meth:`~repro.rack.machine.RackMachine.set_repair_handler`), it turns
a fatal access into a bounded retry the application never observes.

Sources are duck-typed: anything with a ``name`` and
``recover_page(ctx, page_addr) -> Optional[bytes]``.  The concrete
sources that understand fault boxes, partial replicas, checkpoints and
FlacFS live in :mod:`repro.core.fault.repair_sources` (they sit above
FlacDK in the layering); this module provides the coordinator plus the
layer-neutral :class:`MirrorSource` — N-modular *data* redundancy,
voting among explicitly mirrored peer copies.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ...rack.machine import NodeContext, RackMachine
from ...rack.memory import UncorrectableMemoryError
from ...telemetry import TELEMETRY as _TEL, span as _span

_SUB = "reliability"

#: Repair granularity: one OS page (matches checkpoint / replica pages).
REPAIR_PAGE = 4096


class RepairSource:
    """Interface of one redundancy source the coordinator can consult."""

    #: Short identifier recorded in the fault log / stats.
    name = "abstract"

    def recover_page(self, ctx: NodeContext, page_addr: int) -> Optional[bytes]:
        """Known-good content of the page at ``page_addr``, or None."""
        raise NotImplementedError


class MirrorSource(RepairSource):
    """N-modular peer copies: vote among explicitly mirrored pages.

    Critical data can be mirrored across fault domains by registering the
    peer page addresses as one group.  Recovery reads every *healthy*
    peer and takes the majority content — the data-plane analogue of
    n-modular execution's output voting: a silently corrupted peer is
    outvoted, a poisoned one abstains.
    """

    name = "nmodular-mirror"

    def __init__(self) -> None:
        #: page addr -> the other pages in its mirror group
        self._peers: Dict[int, List[int]] = {}

    def register_group(self, page_addrs: List[int]) -> None:
        """Declare ``page_addrs`` (page-aligned) as mirrors of one another."""
        for addr in page_addrs:
            if addr % REPAIR_PAGE:
                raise ValueError(f"mirror page {addr:#x} is not page aligned")
        for addr in page_addrs:
            self._peers[addr] = [a for a in page_addrs if a != addr]

    def peers_of(self, page_addr: int) -> List[int]:
        return list(self._peers.get(page_addr, []))

    def recover_page(self, ctx: NodeContext, page_addr: int) -> Optional[bytes]:
        peers = self._peers.get(page_addr)
        if not peers:
            return None
        ballots: List[bytes] = []
        for peer in peers:
            try:
                ballots.append(ctx.load(peer, REPAIR_PAGE, bypass_cache=True))
            except UncorrectableMemoryError:
                continue  # poisoned peer abstains
        if not ballots:
            return None
        content, votes = Counter(ballots).most_common(1)[0]
        if votes * 2 <= len(ballots):
            return None  # no strict majority: refuse to guess
        return content


@dataclass
class RepairRecord:
    """Outcome of one repair attempt."""

    addr: int
    page_addr: int
    node_id: int
    ok: bool
    source: str
    at_ns: float


@dataclass
class RepairStats:
    attempted: int = 0
    repaired: int = 0
    unrepairable: int = 0
    by_source: Dict[str, int] = field(default_factory=dict)


class RepairCoordinator:
    """Consults redundancy sources in priority order and rewrites poison.

    ``sources`` are ordered most- to least-preferred; the paper's
    ordering (wired by the kernel) is partial replica, n-modular peer,
    latest checkpoint page, FlacFS block layer.  Install
    :attr:`handler` on the machine to activate retry-after-repair at
    every access site.
    """

    #: software cost of localising the fault + source lookup, per attempt
    overhead_ns = 1500.0

    def __init__(self, machine: RackMachine, sources: Optional[List[RepairSource]] = None) -> None:
        self.machine = machine
        self.sources: List[RepairSource] = list(sources or [])
        self.stats = RepairStats()
        self.records: List[RepairRecord] = []

    def add_source(self, source: RepairSource, priority: Optional[int] = None) -> None:
        """Append a source (or insert at ``priority`` position)."""
        if priority is None:
            self.sources.append(source)
        else:
            self.sources.insert(priority, source)

    # -- the repair path --------------------------------------------------------------

    def repair(self, ctx: NodeContext, rack_addr: int) -> RepairRecord:
        """Attempt in-place repair of the page containing ``rack_addr``."""
        with _span("reliability.repair", ctx=ctx, addr=rack_addr):
            record = self._repair(ctx, rack_addr)
        if _TEL.enabled:
            reg = _TEL.registry
            reg.inc(ctx.node_id, _SUB, "repair.attempt", now_ns=ctx.now())
            reg.inc(ctx.node_id, _SUB, "repair.ok" if record.ok else "repair.fail")
            reg.inc(ctx.node_id, _SUB, f"repair.source.{record.source}")
        return record

    def _repair(self, ctx: NodeContext, rack_addr: int) -> RepairRecord:
        page = rack_addr & ~(REPAIR_PAGE - 1)
        machine = self.machine
        self.stats.attempted += 1
        ctx.advance(self.overhead_ns)
        if not machine.poisoned_addrs(page, REPAIR_PAGE):
            # raced with another repairer / a full-page overwrite
            record = RepairRecord(rack_addr, page, ctx.node_id, True, "already-clean", ctx.now())
            self.records.append(record)
            return record
        # the sources' own memory traffic must not recurse into repair
        saved, machine._in_repair = machine._in_repair, True
        try:
            for source in self.sources:
                try:
                    content = source.recover_page(ctx, page)
                except UncorrectableMemoryError:
                    continue  # the source's own copy is poisoned
                if content is None:
                    continue
                if len(content) != REPAIR_PAGE:
                    content = content[:REPAIR_PAGE].ljust(REPAIR_PAGE, b"\x00")
                machine.repair_write(ctx.node_id, page, content)
                machine.faults.record_repair(
                    rack_addr, node_id=ctx.node_id, now_ns=ctx.now(), detail=f"source={source.name}"
                )
                self.stats.repaired += 1
                self.stats.by_source[source.name] = self.stats.by_source.get(source.name, 0) + 1
                record = RepairRecord(rack_addr, page, ctx.node_id, True, source.name, ctx.now())
                self.records.append(record)
                return record
        finally:
            machine._in_repair = saved
        self.stats.unrepairable += 1
        record = RepairRecord(rack_addr, page, ctx.node_id, False, "none", ctx.now())
        self.records.append(record)
        return record

    # -- machine hook ------------------------------------------------------------------

    def handler(self, rack_addr: int, node_id: int) -> bool:
        """Signature the machine's retry path expects; True = retry."""
        return self.repair(self.machine.context(node_id), rack_addr).ok

    def install(self) -> "RepairCoordinator":
        self.machine.set_repair_handler(self.handler)
        return self
