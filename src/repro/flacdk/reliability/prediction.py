"""Failure prediction from correctable-error history (§3.2).

Field studies the paper cites ([13, 39, 55]) show uncorrectable errors
are preceded by rising correctable-error rates on the same page/device.
The predictor keeps an EWMA of CE counts per page; pages whose score
crosses the threshold are flagged for proactive migration before they
fail — the fault-box migration path consumes these flags.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from .monitor import HealthMonitor


@dataclass
class PageRisk:
    page_addr: int
    score: float
    at_risk: bool


@dataclass
class FailurePredictor:
    """EWMA-scored per-page failure risk."""

    monitor: HealthMonitor
    #: EWMA smoothing factor: weight of the newest observation.
    alpha: float = 0.4
    #: Score above which a page is declared at risk.
    threshold: float = 2.0
    _scores: Dict[int, float] = field(default_factory=dict)

    def observe(self, now_ns: float) -> None:
        """Fold the current window's CE counts into the scores."""
        window_counts = self.monitor.ce_count_by_page(now_ns)
        for page in set(self._scores) | set(window_counts):
            fresh = window_counts.get(page, 0)
            prior = self._scores.get(page, 0.0)
            self._scores[page] = self.alpha * fresh + (1 - self.alpha) * prior

    def risk_of(self, page_addr: int) -> PageRisk:
        score = self._scores.get(page_addr, 0.0)
        return PageRisk(page_addr, score, score >= self.threshold)

    def at_risk_pages(self) -> List[PageRisk]:
        """Pages currently above the threshold, riskiest first."""
        risks = [
            PageRisk(page, score, True)
            for page, score in self._scores.items()
            if score >= self.threshold
        ]
        return sorted(risks, key=lambda r: -r.score)

    def boost_page(self, page_addr: int, score: float) -> None:
        """External evidence (a burn-rate alert, an anomaly detector)
        marks a page at risk directly.

        The score only ratchets upward — a boost never erases organic
        CE history — and still decays through :meth:`observe` like any
        other evidence, so a boosted page that stays quiet ages out.
        """
        if score > self._scores.get(page_addr, 0.0):
            self._scores[page_addr] = score

    def reset_page(self, page_addr: int) -> None:
        """Forget a page's history (it was evacuated/retired)."""
        self._scores.pop(page_addr, None)

    def decay_all(self) -> None:
        """Age the scores without new evidence (idle periods)."""
        self._scores = {
            page: (1 - self.alpha) * score for page, score in self._scores.items() if score > 1e-6
        }
