"""Fault recovery (§3.2): checkpoint restore plus operation-log replay.

The paper's observation: the op log already written for replication-based
synchronisation doubles as a redo log.  Recovery therefore needs only a
(possibly old) checkpoint of the state plus the log suffix past the
checkpoint's watermark — no separate journalling of the state machine.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Callable, Optional

from ...rack.machine import NodeContext
from ..sync.oplog import OperationLog
from .checkpoint import Checkpoint, CheckpointManager


@dataclass
class RecoveryReport:
    subject: str
    checkpoint_id: Optional[int]
    replayed_ops: int
    recovered_at_ns: float


class LogReplayRecovery:
    """Rebuilds a replicated state machine from checkpoint + log suffix."""

    def __init__(
        self,
        log: OperationLog,
        apply_fn: Callable[[Any, Any], Any],
        decode: Callable[[bytes], Any] = pickle.loads,
        replay_cost_ns: float = 30.0,
    ) -> None:
        self.log = log
        self.apply_fn = apply_fn
        self.decode = decode
        self.replay_cost_ns = replay_cost_ns

    def recover_state(
        self,
        ctx: NodeContext,
        state: Any,
        from_watermark: int,
        subject: str = "state",
    ) -> RecoveryReport:
        """Replay committed log entries from ``from_watermark`` onto ``state``."""
        replayed = 0
        for _, payload in self.log.read_from(ctx, from_watermark):
            ctx.advance(self.replay_cost_ns)
            self.apply_fn(state, self.decode(payload))
            replayed += 1
        return RecoveryReport(
            subject=subject,
            checkpoint_id=None,
            replayed_ops=replayed,
            recovered_at_ns=ctx.now(),
        )


class RecoveryCoordinator:
    """End-to-end recovery: restore regions, then replay the log suffix."""

    def __init__(
        self,
        checkpoints: CheckpointManager,
        replayer: Optional[LogReplayRecovery] = None,
    ) -> None:
        self.checkpoints = checkpoints
        self.replayer = replayer

    def recover(
        self,
        ctx: NodeContext,
        subject: str,
        state: Any = None,
        checkpoint: Optional[Checkpoint] = None,
    ) -> RecoveryReport:
        """Restore ``subject``'s regions and, if a replayer and state are
        given, roll the state forward from the checkpoint's watermark."""
        restored = self.checkpoints.restore(ctx, subject, checkpoint)
        replayed = 0
        if self.replayer is not None and state is not None and restored.log_watermark is not None:
            report = self.replayer.recover_state(
                ctx, state, from_watermark=restored.log_watermark, subject=subject
            )
            replayed = report.replayed_ops
        return RecoveryReport(
            subject=subject,
            checkpoint_id=restored.checkpoint_id,
            replayed_ops=replayed,
            recovered_at_ns=ctx.now(),
        )
