"""Background memory scrubbing and proactive evacuation (§3.2) — the
*detect-early* and *prevent* stages of the self-healing loop.

Consumers only trip on poison when they touch it; a latent uncorrectable
error in a rarely-read page can sit for seconds and then surface in the
middle of a critical section.  The scrubber walks the global region in
fixed windows on the simulated clock (a patrol scrubber, like the ECC
scrub engines in server memory controllers), hands latent poison to the
:class:`~repro.flacdk.reliability.repair.RepairCoordinator` *before* a
consumer finds it, and folds the observed error density into the
:class:`~repro.flacdk.reliability.prediction.FailurePredictor`.

Pages whose predicted risk crosses the threshold are **evacuated**:
their content is moved to a fresh frame (via
``MemorySystem.migrate_global_page`` or a relocation callback) while it
is still readable, and the suspect frame is quarantined — failures that
never happen are the cheapest kind to recover from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ...rack.machine import NodeContext, RackMachine
from ...telemetry import TELEMETRY as _TEL, span as _span
from .prediction import FailurePredictor
from .repair import REPAIR_PAGE, RepairCoordinator

_SUB = "reliability"


@dataclass
class ScrubStats:
    #: complete sweeps of the global region
    passes: int = 0
    windows_scanned: int = 0
    bytes_scanned: int = 0
    #: poisoned pages found before any consumer touched them
    latent_pages_found: int = 0
    repaired: int = 0
    unrepairable: int = 0
    evacuated: int = 0
    evacuation_failures: int = 0
    #: page addr -> new frame for completed evacuations
    evacuations: Dict[int, int] = field(default_factory=dict)


class MemoryScrubber:
    """Patrol scrubber over the rack's global memory region."""

    def __init__(
        self,
        machine: RackMachine,
        repair: Optional[RepairCoordinator] = None,
        predictor: Optional[FailurePredictor] = None,
        evacuate: Optional[Callable[[NodeContext, int], Optional[int]]] = None,
        window_bytes: int = 1 << 20,
        scrub_ns_per_kb: float = 2.0,
    ) -> None:
        self.machine = machine
        self.repair = repair
        self.predictor = predictor
        #: ``evacuate(ctx, page_addr) -> new frame or None`` (migration hook)
        self.evacuate = evacuate
        self.window_bytes = window_bytes
        self.scrub_ns_per_kb = scrub_ns_per_kb
        self.stats = ScrubStats()
        self._cursor = 0

    # -- one scrub quantum -------------------------------------------------------------

    def step(self, ctx: NodeContext, max_bytes: Optional[int] = None) -> List[int]:
        """Scan the next window; returns the poisoned pages it found.

        Runs from an idle/daemon context.  Each step costs simulated
        time proportional to the bytes patrolled, finds latent poison
        via the machine's scrub query (no fault dice, no data reads),
        repairs it in place, then lets the predictor drive evacuation.
        """
        with _span("reliability.scrub.step", ctx=ctx):
            window = min(max_bytes or self.window_bytes, self.machine.global_size - self._cursor)
            base = self.machine.global_base + self._cursor
            ctx.advance(window / 1024 * self.scrub_ns_per_kb)
            victims = self.machine.poisoned_addrs(base, window)
            self.stats.windows_scanned += 1
            self.stats.bytes_scanned += window
            self._cursor += window
            if self._cursor >= self.machine.global_size:
                self._cursor = 0
                self.stats.passes += 1
            pages = sorted({v & ~(REPAIR_PAGE - 1) for v in victims})
            for page in pages:
                self.stats.latent_pages_found += 1
                if self.repair is None:
                    continue
                if self.repair.repair(ctx, page).ok:
                    self.stats.repaired += 1
                else:
                    self.stats.unrepairable += 1
            self._feed_predictor_and_evacuate(ctx)
        if _TEL.enabled:
            reg = _TEL.registry
            now = ctx.now()
            reg.inc(ctx.node_id, _SUB, "scrub.windows", now_ns=now)
            if pages:
                reg.inc(ctx.node_id, _SUB, "scrub.latent_pages", len(pages))
            reg.set_gauge(ctx.node_id, _SUB, "scrub.bytes_scanned", self.stats.bytes_scanned, now_ns=now)
            reg.set_gauge(ctx.node_id, _SUB, "scrub.passes", self.stats.passes, now_ns=now)
            reg.set_gauge(ctx.node_id, _SUB, "scrub.evacuated", self.stats.evacuated, now_ns=now)
        return pages

    def full_pass(self, ctx: NodeContext) -> List[int]:
        """Patrol the whole global region once (tests / recovery drills)."""
        found: List[int] = []
        start_passes = self.stats.passes
        while self.stats.passes == start_passes:
            found.extend(self.step(ctx))
        return found

    # -- prevention --------------------------------------------------------------------

    def _feed_predictor_and_evacuate(self, ctx: NodeContext) -> None:
        predictor = self.predictor
        if predictor is None:
            return
        predictor.observe(ctx.now())
        if self.evacuate is None:
            return
        for risk in predictor.at_risk_pages():
            page = risk.page_addr
            if page in self.stats.evacuations:
                continue  # already moved off the suspect frame
            if not self.machine.is_global_addr(page):
                continue  # only global frames are ours to move
            try:
                fresh = self.evacuate(ctx, page)
            except Exception:
                self.stats.evacuation_failures += 1
                continue
            if fresh is None:
                self.stats.evacuation_failures += 1
                continue
            self.stats.evacuated += 1
            self.stats.evacuations[page] = fresh
            predictor.reset_page(page)
