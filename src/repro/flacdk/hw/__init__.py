"""FlacDK level 1: hardware-specific operations on global memory (§3.2).

Atomic instructions, memory barriers, cache flush/invalidate/write-back,
and the publication idioms (``write_shared`` / ``read_shared``) every
higher-level FlacDK protocol is composed from.
"""

from .cells import AtomicCell, FlagCell, SequenceCell
from .ops import HwOps, causal_handoff

__all__ = ["AtomicCell", "FlagCell", "HwOps", "SequenceCell", "causal_handoff"]
