"""Small shared-memory cell abstractions over the atomic instructions.

These are the building blocks control planes are made of: a counter every
node can bump, a flag used as a doorbell, a sequence/generation word.
All of them live at a fixed rack address in global memory and are
manipulated exclusively with cache-bypassing atomics, so they are the
*only* coherent words in the system — exactly the hardware contract the
paper assumes (§2.1).
"""

from __future__ import annotations

from typing import Tuple

from ...rack.machine import NodeContext


class AtomicCell:
    """A single coherent integer word in shared memory."""

    __slots__ = ("addr", "width")

    def __init__(self, addr: int, width: int = 8) -> None:
        if width not in (1, 2, 4, 8):
            raise ValueError(f"unsupported cell width {width}")
        self.addr = addr
        self.width = width

    def load(self, ctx: NodeContext) -> int:
        return ctx.atomic_load(self.addr, self.width)

    def store(self, ctx: NodeContext, value: int) -> None:
        ctx.atomic_store(self.addr, value, self.width)

    def cas(self, ctx: NodeContext, expected: int, new: int) -> Tuple[bool, int]:
        return ctx.cas(self.addr, expected, new, self.width)

    def fetch_add(self, ctx: NodeContext, delta: int = 1) -> int:
        return ctx.fetch_add(self.addr, delta, self.width)

    def swap(self, ctx: NodeContext, new: int) -> int:
        return ctx.swap(self.addr, new, self.width)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AtomicCell({self.addr:#x}, w={self.width})"


class SequenceCell(AtomicCell):
    """A monotonically increasing generation counter.

    Used for TLB shootdown generations, registry epochs, and commit
    sequence numbers.  ``bump`` returns the *new* value.
    """

    def bump(self, ctx: NodeContext) -> int:
        return self.fetch_add(ctx, 1) + 1

    def wait_at_least(self, ctx: NodeContext, target: int, max_polls: int = 1_000_000) -> int:
        """Poll until the sequence reaches ``target``.

        In the simulator, progress only happens when other node contexts
        are driven; this raises if the target is unreachable rather than
        spinning forever.
        """
        for _ in range(max_polls):
            value = self.load(ctx)
            if value >= target:
                return value
        raise TimeoutError(f"sequence at {self.addr:#x} never reached {target}")


class FlagCell(AtomicCell):
    """A doorbell: 0 = clear, nonzero = rung (value often carries a tag)."""

    def ring(self, ctx: NodeContext, tag: int = 1) -> None:
        self.store(ctx, tag)

    def is_rung(self, ctx: NodeContext) -> bool:
        return self.load(ctx) != 0

    def take(self, ctx: NodeContext) -> int:
        """Atomically read-and-clear; returns the tag (0 if not rung)."""
        return self.swap(ctx, 0)
