"""FlacDK level-1 library: hardware operations on rack memory (§3.2).

:class:`HwOps` wraps a :class:`~repro.rack.machine.NodeContext` with the
typed accessors and the two publication idioms every FlacDK protocol is
built from:

* ``write_shared`` — cached store then ``flush`` (make my write visible);
* ``read_shared`` — ``invalidate`` then cached load (drop my stale copy).

Control words that multiple nodes race on (flags, counters, pointers) use
the atomic accessors, which bypass caches entirely — the libfam-atomic
model the paper cites.
"""

from __future__ import annotations

import struct
from typing import Tuple

from ...rack.machine import NodeContext


class HwOps:
    """Typed, idiomatic access to rack memory from one node."""

    __slots__ = ("ctx",)

    def __init__(self, ctx: NodeContext) -> None:
        self.ctx = ctx

    @property
    def node_id(self) -> int:
        return self.ctx.node_id

    def now(self) -> float:
        return self.ctx.now()

    def advance(self, ns: float) -> float:
        return self.ctx.advance(ns)

    # -- plain (cached, incoherent) accessors ----------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        return self.ctx.load(addr, size)

    def write_bytes(self, addr: int, data: bytes) -> None:
        self.ctx.store(addr, data)

    def read_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.ctx.load(addr, 8))[0]

    def write_u64(self, addr: int, value: int) -> None:
        self.ctx.store(addr, struct.pack("<Q", value & (2**64 - 1)))

    def read_u32(self, addr: int) -> int:
        return struct.unpack("<I", self.ctx.load(addr, 4))[0]

    def write_u32(self, addr: int, value: int) -> None:
        self.ctx.store(addr, struct.pack("<I", value & (2**32 - 1)))

    # -- publication idioms -------------------------------------------------------

    def write_shared(self, addr: int, data: bytes) -> None:
        """Store then flush: after this, other nodes *can* see the data
        (they still must drop their own stale copies)."""
        self.ctx.store(addr, data)
        self.ctx.flush(addr, len(data))

    def read_shared(self, addr: int, size: int) -> bytes:
        """Invalidate then load: always observes the current backing bytes."""
        self.ctx.invalidate(addr, size)
        return self.ctx.load(addr, size)

    def read_shared_u64(self, addr: int) -> int:
        return struct.unpack("<Q", self.read_shared(addr, 8))[0]

    def write_shared_u64(self, addr: int, value: int) -> None:
        self.write_shared(addr, struct.pack("<Q", value & (2**64 - 1)))

    # -- cache maintenance ----------------------------------------------------------

    def flush(self, addr: int, size: int) -> int:
        return self.ctx.flush(addr, size)

    def invalidate(self, addr: int, size: int) -> int:
        return self.ctx.invalidate(addr, size)

    def flush_invalidate(self, addr: int, size: int) -> Tuple[int, int]:
        return self.ctx.flush_invalidate(addr, size)

    def fence(self) -> None:
        self.ctx.fence()

    # -- atomics (cache-bypassing, rack-coherent) --------------------------------------

    def atomic_load(self, addr: int, width: int = 8) -> int:
        return self.ctx.atomic_load(addr, width)

    def atomic_store(self, addr: int, value: int, width: int = 8) -> None:
        self.ctx.atomic_store(addr, value, width)

    def cas(self, addr: int, expected: int, new: int, width: int = 8) -> Tuple[bool, int]:
        return self.ctx.cas(addr, expected, new, width)

    def fetch_add(self, addr: int, delta: int, width: int = 8) -> int:
        return self.ctx.fetch_add(addr, delta, width)

    def swap(self, addr: int, new: int, width: int = 8) -> int:
        return self.ctx.swap(addr, new, width)


def causal_handoff(producer: NodeContext, consumer: NodeContext) -> None:
    """Order the consumer's clock after the producer's.

    The simulator has no global clock; when one node observes data
    another node published (flag seen, message consumed), the protocol
    calls this at the observation point so simulated causality holds:
    the observation cannot complete before the publication happened.
    """
    consumer.node.clock.sync_to(producer.now())
