"""Cost model for the baseline network stacks.

Figure 4's analysis attributes most of the networking method's latency
to *software* overhead: socket buffer allocation, data copies, and
stack processing.  These parameters make each of those taxes explicit
so the benchmarks can report where the time goes.  Values are
representative of a tuned kernel TCP stack on a direct 25 GbE link and
of kernel-bypass RDMA on the same wire.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class EthernetSpec:
    """The physical link."""

    #: Payload bandwidth in bytes per nanosecond (25 GbE ~ 3.1 B/ns).
    bandwidth_bytes_per_ns: float = 3.1
    #: Propagation + PHY/MAC latency per packet, one way.
    propagation_ns: float = 600.0
    #: Maximum transmission unit (payload bytes per packet).
    mtu: int = 1500
    #: Per-packet header overhead on the wire (Ethernet+IP+TCP).
    header_bytes: int = 66


@dataclass
class TcpCosts:
    """Kernel TCP/IP software path, per side."""

    #: send()/recv() syscall entry+exit.
    syscall_ns: float = 300.0
    #: skb allocation per packet (the paper's "buffer allocations").
    skb_alloc_ns: float = 350.0
    #: user<->kernel copy, per byte (the paper's "data copies").
    copy_ns_per_byte: float = 0.05
    #: TX-side protocol processing per packet (tcp_sendmsg..qdisc..driver).
    tx_stack_ns: float = 1600.0
    #: RX-side protocol processing per packet (irq, softirq, tcp_rcv).
    rx_stack_ns: float = 2400.0
    #: waking the blocked receiver process (scheduler + context switch).
    wakeup_ns: float = 1900.0


@dataclass
class RdmaCosts:
    """Kernel-bypass RDMA verbs, per side."""

    #: posting a WQE + doorbell (user space, no syscall).
    post_ns: float = 250.0
    #: NIC processing per message, each side.
    nic_ns: float = 750.0
    #: polling a completion.
    poll_cq_ns: float = 150.0
    #: registered-memory copy avoided: payload still crosses PCIe once.
    pcie_ns_per_byte: float = 0.03


@dataclass
class SerializationCosts:
    """Structured-payload (de)serialisation — a "data center tax"."""

    fixed_ns: float = 400.0
    per_byte_ns: float = 0.25
