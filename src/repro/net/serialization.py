"""Serialization cost accounting — the tax shared memory never pays.

Network transports move *bytes*, so structured data must be flattened
on one side and rebuilt on the other; FlacOS services pass references
into shared memory instead.  This module makes the tax measurable: the
benchmarks wrap baseline payloads in ``dumps``/``loads`` and the per-byte
cost shows up on the simulated clocks.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from typing import Any, Optional

from ..rack.machine import NodeContext
from .params import SerializationCosts


@dataclass
class SerializerStats:
    serialized: int = 0
    deserialized: int = 0
    bytes_produced: int = 0


class Serializer:
    """Pickle-backed serializer that charges simulated time."""

    def __init__(self, costs: Optional[SerializationCosts] = None) -> None:
        self.costs = costs or SerializationCosts()
        self.stats = SerializerStats()

    def dumps(self, ctx: NodeContext, obj: Any) -> bytes:
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        ctx.advance(self.costs.fixed_ns + len(data) * self.costs.per_byte_ns)
        self.stats.serialized += 1
        self.stats.bytes_produced += len(data)
        return data

    def loads(self, ctx: NodeContext, data: bytes) -> Any:
        ctx.advance(self.costs.fixed_ns + len(data) * self.costs.per_byte_ns)
        self.stats.deserialized += 1
        return pickle.loads(data)
