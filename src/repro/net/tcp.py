"""Kernel TCP/IP stack simulation — the networking baseline of Figure 4.

Every message pays, per side, the full "data center tax" the paper
derides: a syscall, an skb allocation per packet, a user/kernel copy of
every byte, per-packet protocol processing, and a receiver wakeup.
Delivery is in-order and reliable (we model the cost structure, not
loss recovery).  Payload bytes live host-side — this stack does *not*
use rack shared memory; that is exactly what FlacOS removes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Optional, Tuple

from ..rack.machine import NodeContext
from .ethernet import EthernetLink
from .params import TcpCosts


class TcpError(Exception):
    pass


@dataclass
class _Packet:
    payload_len: int
    arrival_ns: float


@dataclass
class _SocketBuffer:
    """Receive queue of one endpoint: reassembled messages."""

    messages: Deque[Tuple[bytes, float]] = field(default_factory=deque)


@dataclass
class TcpStats:
    messages_sent: int = 0
    packets_sent: int = 0
    bytes_copied: int = 0
    skbs_allocated: int = 0


class TcpConnection:
    """One established TCP connection between two nodes."""

    def __init__(self, network: "TcpNetwork", a_node: int, b_node: int) -> None:
        self.network = network
        self._ends: Dict[int, _SocketBuffer] = {a_node: _SocketBuffer(), b_node: _SocketBuffer()}
        self._peer = {a_node: b_node, b_node: a_node}

    def send(self, ctx: NodeContext, data: bytes) -> None:
        """Blocking send: charges the full TX path and enqueues at the peer."""
        costs = self.network.costs
        link = self.network.link_between(ctx.node_id, self._peer[ctx.node_id])
        stats = self.network.stats
        ctx.advance(costs.syscall_ns)
        ctx.advance(len(data) * costs.copy_ns_per_byte)  # user -> kernel
        stats.bytes_copied += len(data)
        for _ in link.packetise(len(data)):
            ctx.advance(costs.skb_alloc_ns + costs.tx_stack_ns)
            stats.skbs_allocated += 1
            stats.packets_sent += 1
        arrival = link.schedule(ctx.now(), len(data))
        self._ends[self._peer[ctx.node_id]].messages.append((bytes(data), arrival))
        stats.messages_sent += 1

    def recv(self, ctx: NodeContext) -> Optional[bytes]:
        """Receive one message; None when nothing has arrived.

        Charges the RX path: per-packet protocol processing, the process
        wakeup, and the kernel -> user copy.
        """
        costs = self.network.costs
        buffer = self._ends[ctx.node_id]
        if not buffer.messages:
            return None
        data, arrival = buffer.messages.popleft()
        ctx.node.clock.sync_to(arrival)
        link = self.network.link_between(ctx.node_id, self._peer[ctx.node_id])
        for _ in link.packetise(len(data)):
            ctx.advance(costs.rx_stack_ns)
        ctx.advance(costs.wakeup_ns)
        ctx.advance(costs.syscall_ns)
        ctx.advance(len(data) * costs.copy_ns_per_byte)  # kernel -> user
        self.network.stats.bytes_copied += len(data)
        return data

    def pending(self, ctx: NodeContext) -> int:
        return len(self._ends[ctx.node_id].messages)


class TcpNetwork:
    """Direct-connected Ethernet between every node pair (the testbed)."""

    def __init__(self, costs: Optional[TcpCosts] = None) -> None:
        self.costs = costs or TcpCosts()
        self._links: Dict[Tuple[int, int], EthernetLink] = {}
        self._listeners: Dict[str, int] = {}
        self.stats = TcpStats()

    def link_between(self, a: int, b: int) -> EthernetLink:
        key = (min(a, b), max(a, b))
        link = self._links.get(key)
        if link is None:
            link = EthernetLink()
            self._links[key] = link
        return link

    def listen(self, ctx: NodeContext, name: str) -> None:
        if name in self._listeners:
            raise TcpError(f"{name!r} already bound")
        self._listeners[name] = ctx.node_id

    def connect(self, ctx: NodeContext, name: str) -> TcpConnection:
        """Connect by name; charges a SYN/SYN-ACK/ACK handshake."""
        server = self._listeners.get(name)
        if server is None:
            raise TcpError(f"no listener named {name!r}")
        link = self.link_between(ctx.node_id, server)
        handshake = 3 * (self.costs.tx_stack_ns + link.wire_ns(0) + self.costs.rx_stack_ns)
        ctx.advance(self.costs.syscall_ns + handshake)
        return TcpConnection(self, ctx.node_id, server)
