"""RDMA verbs simulation — the disaggregated-system transport (Figure 1a).

Kernel-bypass removes the syscall/skb/wakeup taxes but keeps per-message
NIC processing and a PCIe crossing per byte, and — the paper's
structural point — still *transfers* data instead of sharing it: every
byte is moved between private memories rather than accessed in place.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from ..rack.machine import NodeContext
from .ethernet import EthernetLink
from .params import RdmaCosts


class RdmaError(Exception):
    pass


@dataclass
class RdmaStats:
    sends: int = 0
    writes: int = 0
    bytes_transferred: int = 0


class RdmaQueuePair:
    """A connected QP between two nodes (RC semantics)."""

    def __init__(self, network: "RdmaNetwork", a_node: int, b_node: int) -> None:
        self.network = network
        self._recv_queues: Dict[int, Deque[Tuple[bytes, float]]] = {
            a_node: deque(),
            b_node: deque(),
        }
        self._peer = {a_node: b_node, b_node: a_node}
        #: remote-key'd memory windows for one-sided writes: node -> bytearray
        self._windows: Dict[int, bytearray] = {}

    # -- two-sided ----------------------------------------------------------------

    def post_send(self, ctx: NodeContext, data: bytes) -> None:
        costs = self.network.costs
        link = self.network.link_between(ctx.node_id, self._peer[ctx.node_id])
        ctx.advance(costs.post_ns + costs.nic_ns)
        ctx.advance(len(data) * costs.pcie_ns_per_byte)
        arrival = link.schedule(ctx.now(), len(data)) + costs.nic_ns
        self._recv_queues[self._peer[ctx.node_id]].append((bytes(data), arrival))
        self.network.stats.sends += 1
        self.network.stats.bytes_transferred += len(data)

    def poll_recv(self, ctx: NodeContext) -> Optional[bytes]:
        costs = self.network.costs
        queue = self._recv_queues[ctx.node_id]
        ctx.advance(costs.poll_cq_ns)
        if not queue:
            return None
        data, arrival = queue.popleft()
        ctx.node.clock.sync_to(arrival)
        ctx.advance(len(data) * costs.pcie_ns_per_byte)
        return data

    # -- one-sided -------------------------------------------------------------------

    def register_window(self, node_id: int, size: int) -> None:
        self._windows[node_id] = bytearray(size)

    def rdma_write(self, ctx: NodeContext, remote_node: int, offset: int, data: bytes) -> None:
        """One-sided write into the peer's registered window — the remote
        CPU is not involved (no rx cost on the peer's clock)."""
        window = self._windows.get(remote_node)
        if window is None:
            raise RdmaError(f"node {remote_node} has no registered window")
        if offset + len(data) > len(window):
            raise RdmaError("write outside the registered window")
        costs = self.network.costs
        link = self.network.link_between(ctx.node_id, remote_node)
        ctx.advance(costs.post_ns + costs.nic_ns)
        ctx.advance(len(data) * costs.pcie_ns_per_byte)
        arrival = link.schedule(ctx.now(), len(data)) + costs.nic_ns
        ctx.node.clock.sync_to(arrival)  # flushed write completes on arrival
        window[offset : offset + len(data)] = data
        self.network.stats.writes += 1
        self.network.stats.bytes_transferred += len(data)

    def read_window(self, node_id: int, offset: int, size: int) -> bytes:
        window = self._windows.get(node_id)
        if window is None:
            raise RdmaError(f"node {node_id} has no registered window")
        return bytes(window[offset : offset + size])


class RdmaNetwork:
    """RDMA fabric over the same physical links as TCP."""

    def __init__(self, costs: Optional[RdmaCosts] = None) -> None:
        self.costs = costs or RdmaCosts()
        self._links: Dict[Tuple[int, int], EthernetLink] = {}
        self.stats = RdmaStats()

    def link_between(self, a: int, b: int) -> EthernetLink:
        key = (min(a, b), max(a, b))
        link = self._links.get(key)
        if link is None:
            link = EthernetLink()
            self._links[key] = link
        return link

    def create_qp(self, a_node: int, b_node: int) -> RdmaQueuePair:
        return RdmaQueuePair(self, a_node, b_node)
