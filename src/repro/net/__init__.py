"""Baseline network substrates (Figure 1a systems).

Kernel TCP/IP (the networking method Figure 4 compares against),
kernel-bypass RDMA (what disaggregated systems use), the Ethernet link
model beneath both, and serialization cost accounting.
"""

from .ethernet import EthernetLink
from .params import EthernetSpec, RdmaCosts, SerializationCosts, TcpCosts
from .rdma import RdmaError, RdmaNetwork, RdmaQueuePair, RdmaStats
from .serialization import Serializer, SerializerStats
from .tcp import TcpConnection, TcpError, TcpNetwork, TcpStats

__all__ = [
    "EthernetLink",
    "EthernetSpec",
    "RdmaCosts",
    "RdmaError",
    "RdmaNetwork",
    "RdmaQueuePair",
    "RdmaStats",
    "SerializationCosts",
    "Serializer",
    "SerializerStats",
    "TcpConnection",
    "TcpCosts",
    "TcpError",
    "TcpNetwork",
    "TcpStats",
]
