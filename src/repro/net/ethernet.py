"""Ethernet link model: packetisation, wire time, delivery ordering."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from .params import EthernetSpec


@dataclass
class EthernetLink:
    """A point-to-point full-duplex link between two nodes."""

    spec: EthernetSpec = field(default_factory=EthernetSpec)
    packets_carried: int = 0
    bytes_carried: int = 0
    down: bool = False
    #: when the transmitter finishes serialising the last queued packet —
    #: back-to-back messages queue behind each other, so a stream cannot
    #: exceed wire bandwidth no matter how fast the sender's CPU is.
    free_at_ns: float = 0.0

    def packetise(self, size: int) -> List[int]:
        """Split a payload into per-packet payload sizes (>=1 packet)."""
        if size <= 0:
            return [0]
        mtu = self.spec.mtu
        full, last = divmod(size, mtu)
        sizes = [mtu] * full
        if last:
            sizes.append(last)
        return sizes

    def wire_ns(self, payload_bytes: int) -> float:
        """One packet's time on the wire, including headers and PHY."""
        total = payload_bytes + self.spec.header_bytes
        return self.spec.propagation_ns + total / self.spec.bandwidth_bytes_per_ns

    def carry(self, payload_bytes: int) -> float:
        """Account one packet; returns its wire time."""
        if self.down:
            raise ConnectionError("link is down")
        self.packets_carried += 1
        self.bytes_carried += payload_bytes
        return self.wire_ns(payload_bytes)

    def transfer_ns(self, size: int) -> float:
        """Total wire time of a payload (packets pipelined back-to-back:
        propagation once, serialisation per packet)."""
        packets = self.packetise(size)
        serialisation = sum(
            (p + self.spec.header_bytes) / self.spec.bandwidth_bytes_per_ns for p in packets
        )
        return self.spec.propagation_ns + serialisation

    def schedule(self, now_ns: float, size: int) -> float:
        """Queue a payload on the transmitter; returns its arrival time.

        Serialisation starts when the link is free (earlier messages
        drain first), so sustained streams are bandwidth-limited.
        """
        if self.down:
            raise ConnectionError("link is down")
        start = max(now_ns, self.free_at_ns)
        serialisation = sum(
            (p + self.spec.header_bytes) / self.spec.bandwidth_bytes_per_ns
            for p in self.packetise(size)
        )
        self.free_at_ns = start + serialisation
        for payload in self.packetise(size):
            self.packets_carried += 1
            self.bytes_carried += payload
        return self.free_at_ns + self.spec.propagation_ns
