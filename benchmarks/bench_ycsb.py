"""E13 — YCSB workload mixes over FlacOS IPC vs kernel TCP.

Figure 4 used fixed-size SET/GET; this bench widens the workload axis:
the standard YCSB mixes (A update-heavy, B read-mostly, C read-only,
D read-latest, F read-modify-write) with zipfian keys, on the same
two-node client/server split.  The claim under test: the FlacOS latency
reduction holds across operation mixes, not just the two points the
paper measured.
"""

import statistics

import pytest

from repro.apps.redis import connect_over_flacos, connect_over_tcp
from repro.bench import Table, build_rig
from repro.net import TcpNetwork
from repro.workloads.ycsb import WORKLOADS, YcsbConfig, YcsbWorkload

OPS = 80
CONFIG = YcsbConfig(n_keys=120, value_size=256, seed=9)


def run_workload(letter: str, transport: str) -> float:
    """Mean per-command latency (ns) of one workload on one transport."""
    rig = build_rig()
    if transport == "flacos":
        client, _ = connect_over_flacos(rig.kernel.ipc, rig.c0, rig.c1)
    else:
        client, _ = connect_over_tcp(TcpNetwork(), rig.c0, rig.c1)
    workload = YcsbWorkload(letter, CONFIG)
    for command in workload.load_phase():
        client.request(*command)
    rig.align()
    latencies = []
    for command in workload.run_phase(OPS):
        _, ns = client.timed_request(*command)
        latencies.append(ns)
    return statistics.mean(latencies)


def run_all():
    return {
        letter: (run_workload(letter, "tcp"), run_workload(letter, "flacos"))
        for letter in WORKLOADS
    }


@pytest.mark.benchmark(group="ycsb")
def test_ycsb_mixes(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E13 — YCSB mixes, mean command latency (zipfian keys, 256 B values)",
        ["workload", "TCP (us)", "FlacOS (us)", "reduction"],
    )
    descriptions = {
        "A": "A (50/50 update)",
        "B": "B (95/5 read)",
        "C": "C (read only)",
        "D": "D (read latest)",
        "F": "F (read-modify-write)",
    }
    for letter, (tcp_ns, flacos_ns) in results.items():
        table.add_row(
            descriptions[letter], tcp_ns / 1000, flacos_ns / 1000,
            f"{tcp_ns / flacos_ns:.2f}x",
        )
    ratios = [tcp / flacos for tcp, flacos in results.values()]
    emit(
        "E13_ycsb",
        table.render()
        + f"\nreduction across all five mixes: {min(ratios):.2f}x – {max(ratios):.2f}x "
        f"(Figure 4's band was 1.75-2.4x at two points)",
    )
    # the paper's latency reduction holds across every mix
    for letter, (tcp_ns, flacos_ns) in results.items():
        assert tcp_ns / flacos_ns > 1.4, f"workload {letter} fell out of band"
