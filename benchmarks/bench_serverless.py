"""E7 — §4.1 case study: serverless on FlacOS.

The three pain points the paper's customers report, measured:

1. **Cold start** — startup latency by path (cold / FlacOS-shared /
   warm), i.e. the container experiment seen through the platform;
2. **Chain communication** — a 3-stage function chain hopping across
   nodes over FlacOS IPC vs TCP;
3. **Density** — sandboxes that fit a memory budget with and without
   rack-wide runtime sharing.
"""

import pytest

from repro.apps.containers import (
    ContainerRuntime,
    ImageSpec,
    LayerSpec,
    Registry,
    RegistrySpec,
    RuntimeSpec,
)
from repro.apps.serverless import FunctionSpec, ServerlessPlatform
from repro.bench import Table, build_rig
from repro.net import TcpNetwork
from repro.rack import rendezvous


def _image():
    """A 64 MiB function runtime image."""
    return ImageSpec(
        name="fn-runtime:1",
        layers=[LayerSpec(digest="sha256:fn" * 16, size_bytes=1 << 26)],
    )


def _registry():
    """An in-datacenter registry (5 ms RTT), not the WAN default."""
    return Registry(RegistrySpec(rtt_ns=5e6, metadata_requests=4, bandwidth_bytes_per_ns=0.70))


def _stage_a(ctx, payload):
    return payload + b"|a"


def _stage_b(ctx, payload):
    return payload + b"|b"


def _stage_c(ctx, payload):
    return payload + b"|c"


def _platform():
    rig = build_rig()
    registry = _registry()
    registry.push(_image())
    runtime = ContainerRuntime(
        rig.kernel.fs, registry, RuntimeSpec(runtime_init_ns=5e7)
    )
    platform = ServerlessPlatform(
        rig.machine, runtime, ipc=rig.kernel.ipc, tcp=TcpNetwork()
    )
    for name, handler in (("a", _stage_a), ("b", _stage_b), ("c", _stage_c)):
        platform.deploy(
            FunctionSpec(name, "fn-runtime:1", handler, exec_ns=100_000.0)
        )
    return rig, platform


def run_startup_paths():
    rig, platform = _platform()
    _, cold = platform.invoke(rig.c0, "a", b"x")
    rendezvous(rig.c0.node.clock, rig.c1.node.clock)
    _, shared = platform.invoke(rig.c1, "a", b"x")
    _, warm = platform.invoke(rig.c1, "a", b"x")
    return cold, shared, warm


def run_chain(transport):
    rig, platform = _platform()
    # warm every stage on its node first (isolate communication cost)
    placements = [("a", rig.c0), ("b", rig.c1), ("c", rig.c0)]
    for name, ctx in placements:
        platform.invoke(ctx, name, b"warm")
    rig.align()
    payload = b"p" * 16384
    result, report = platform.invoke_chain(rig.c0, placements, payload, transport=transport)
    assert result.endswith(b"|a|b|c")
    return report


def run_density():
    _, platform = _platform()
    budgets = [1 << 30, 4 << 30, 16 << 30]
    return {
        budget: (
            platform.density("a", budget, shared_runtime=True),
            platform.density("a", budget, shared_runtime=False),
        )
        for budget in budgets
    }


@pytest.mark.benchmark(group="serverless")
def test_startup_paths(benchmark, emit):
    cold, shared, warm = benchmark.pedantic(run_startup_paths, rounds=1, iterations=1)
    table = Table(
        "E7a — serverless sandbox startup by path",
        ["path", "startup (ms)", "invocation total (ms)"],
    )
    for label, report in (("cold", cold), ("FlacOS shared image", shared), ("warm pool", warm)):
        table.add_row(label, report.startup_ns / 1e6, report.total_ns / 1e6)
    emit(
        "E7a_serverless_startup",
        table.render()
        + f"\nshared image start beats cold by {cold.startup_ns / shared.startup_ns:.1f}x; "
        f"warm reuse is effectively free",
    )
    assert cold.startup_ns > shared.startup_ns > warm.startup_ns == 0.0


@pytest.mark.benchmark(group="serverless")
def test_chain_transport(benchmark, emit):
    flacos = benchmark.pedantic(lambda: run_chain("flacos"), rounds=1, iterations=1)
    tcp = run_chain("tcp")
    table = Table(
        "E7b — 3-stage chain across nodes (16 KiB payloads)",
        ["transport", "comm (us)", "end-to-end (us)"],
    )
    table.add_row("FlacOS IPC", flacos.comm_ns / 1000, flacos.total_ns / 1000)
    table.add_row("TCP", tcp.comm_ns / 1000, tcp.total_ns / 1000)
    emit(
        "E7b_serverless_chain",
        table.render()
        + f"\nFlacOS removes {100 * (1 - flacos.comm_ns / tcp.comm_ns):.0f}% of chain communication cost",
    )
    assert flacos.comm_ns < tcp.comm_ns
    assert flacos.total_ns < tcp.total_ns


@pytest.mark.benchmark(group="serverless")
def test_density(benchmark, emit):
    results = benchmark.pedantic(run_density, rounds=1, iterations=1)
    table = Table(
        "E7c — sandboxes per memory budget (256 MiB runtime, 32 MiB private)",
        ["budget (GiB)", "FlacOS shared runtime", "private runtimes", "gain"],
    )
    for budget, (shared, private) in results.items():
        table.add_row(
            budget >> 30, shared, private, f"{shared / max(1, private):.1f}x"
        )
    emit("E7c_serverless_density", table.render())
    for budget, (shared, private) in results.items():
        assert shared > private
    # sharing gain grows with budget (runtime amortised once per rack)
    gains = [s / max(1, p) for s, p in results.values()]
    assert gains == sorted(gains)
