"""E12 — §3.4 customer scenario: HPC collectives over shared memory.

Broadcast and allreduce across 4 ranks (2 per node), FlacOS shared
memory vs the cluster-standard TCP algorithms (binomial tree, ring).
The structural claim: collectives over shared memory move each byte at
most twice through the fabric (publish + read) regardless of rank
count, while network collectives retransmit the payload per tree edge /
ring hop.
"""

import numpy as np
import pytest

from repro.apps.collectives import SharedMemoryCollectives, TcpCollectives
from repro.bench import Table, build_rig
from repro.net import TcpNetwork

PAYLOAD_SIZES = (4096, 65536, 262144)
N_RANKS = 4


def _ranks(rig):
    return [rig.machine.context(i % 2) for i in range(N_RANKS)]


def run_broadcasts():
    results = {}
    for size in PAYLOAD_SIZES:
        rig = build_rig()
        coll = SharedMemoryCollectives(
            rig.kernel.ipc.buffers, rig.kernel.arena.take(64, align=8)
        ).format(rig.c0)
        ranks = _ranks(rig)
        rig.align()
        shm = coll.broadcast(ranks[0], ranks, b"w" * size)

        rig2 = build_rig()
        ranks2 = _ranks(rig2)
        rig2.align()
        tcp = TcpCollectives(TcpNetwork()).broadcast(0, ranks2, b"w" * size)
        results[size] = (shm, tcp)
    return results


def run_allreduces():
    results = {}
    for size in PAYLOAD_SIZES:
        vectors = {i: np.ones(size // 8) * (i + 1) for i in range(N_RANKS)}
        rig = build_rig()
        coll = SharedMemoryCollectives(
            rig.kernel.ipc.buffers, rig.kernel.arena.take(64, align=8)
        ).format(rig.c0)
        ranks = _ranks(rig)
        rig.align()
        shm_result, shm = coll.allreduce_sum(ranks, vectors)

        rig2 = build_rig()
        ranks2 = _ranks(rig2)
        rig2.align()
        tcp_result, tcp = TcpCollectives(TcpNetwork()).allreduce_sum(ranks2, vectors)
        np.testing.assert_allclose(shm_result, tcp_result)
        results[size] = (shm, tcp)
    return results


@pytest.mark.benchmark(group="collectives")
def test_broadcast(benchmark, emit):
    results = benchmark.pedantic(run_broadcasts, rounds=1, iterations=1)
    table = Table(
        "E12a — broadcast to 4 ranks (2 per node)",
        ["payload", "strategy", "makespan (us)", "wire bytes"],
    )
    for size, (shm, tcp) in results.items():
        table.add_row(f"{size >> 10} KiB", "flacos", shm.makespan_ns / 1000, shm.bytes_over_wire)
        table.add_row(f"{size >> 10} KiB", "tcp tree", tcp.makespan_ns / 1000, tcp.bytes_over_wire)
    gains = {s: t.makespan_ns / f.makespan_ns for s, (f, t) in results.items()}
    emit(
        "E12a_broadcast",
        table.render()
        + "\n"
        + "\n".join(f"{s >> 10} KiB: flacos {g:.1f}x faster" for s, g in gains.items()),
    )
    for size, (shm, tcp) in results.items():
        assert shm.bytes_over_wire == 0
        if size >= 65536:
            assert shm.makespan_ns < tcp.makespan_ns
    assert gains[262144] > gains[4096]  # the gap widens with payload


@pytest.mark.benchmark(group="collectives")
def test_allreduce(benchmark, emit):
    results = benchmark.pedantic(run_allreduces, rounds=1, iterations=1)
    table = Table(
        "E12b — allreduce (sum) across 4 ranks",
        ["vector", "strategy", "makespan (us)", "wire bytes"],
    )
    for size, (shm, tcp) in results.items():
        table.add_row(f"{size >> 10} KiB", "flacos", shm.makespan_ns / 1000, shm.bytes_over_wire)
        table.add_row(f"{size >> 10} KiB", "tcp ring", tcp.makespan_ns / 1000, tcp.bytes_over_wire)
    emit(
        "E12b_allreduce",
        table.render(),
    )
    for size, (shm, tcp) in results.items():
        assert shm.bytes_over_wire == 0
        if size >= 65536:
            assert shm.makespan_ns < tcp.makespan_ns
