"""E3 — §3.2 ablation: synchronisation methods on non-coherent memory.

A shared object is driven from every node with a read-mostly mix (the
kernel-metadata access pattern FlacOS cares about): 90% reads, 10%
linearisable mutations.  The table reports wall-clock makespan per
operation under the four disciplines FlacDK offers.

The structural result the paper's design rests on: with a lock, *every
read* pays interconnect round trips on the one contended word; the
lock-free families confine remote traffic to mutations (replication,
RCU) or to one mailbox per client (delegation), so read-mostly
workloads run at local speed.
"""

import pytest

from repro.bench import Table, build_rig
from repro.flacdk.alloc import EpochReclaimer, SharedHeap
from repro.flacdk.sync import (
    DelegationService,
    GlobalSpinLock,
    NodeReplication,
    OperationLog,
    RcuCell,
)
from repro.rack.clock import rendezvous

OPS = 100
READ_RATIO = 0.9
NODE_COUNTS = (2, 4, 8)


def _rig(n_nodes):
    rig = build_rig(
        n_nodes=n_nodes, topology="single_switch" if n_nodes > 2 else "dual_direct"
    )
    ctxs = [rig.machine.context(i) for i in range(n_nodes)]
    rig.align()
    return rig, ctxs, rig.kernel.arena


def _schedule(n_nodes):
    """Deterministic (node, is_read) schedule shared by all methods."""
    ops = []
    for i in range(OPS):
        node = i % n_nodes
        is_read = (i % 10) != 0  # 90% reads
        ops.append((node, is_read))
    return ops


def _makespan(ctxs, t0, runner, schedule):
    for node, is_read in schedule:
        runner(ctxs[node], is_read)
    return (max(c.now() for c in ctxs) - t0) / len(schedule)


def run_spinlock(n_nodes):
    """Both reads and writes take the global lock (the only safe way to
    read a multi-word object that is mutated in place)."""
    rig, ctxs, arena = _rig(n_nodes)
    lock = GlobalSpinLock(arena.take(8, align=8)).format(ctxs[0])
    counter = arena.take(8, align=8)
    ctxs[0].atomic_store(counter, 0)
    t0 = max(c.now() for c in ctxs)

    def op(ctx, is_read):
        with lock.held(ctx):
            value = ctx.atomic_load(counter)
            if not is_read:
                ctx.atomic_store(counter, value + 1)
        # the critical section serialises everyone behind it
        rendezvous(*(c.node.clock for c in ctxs))

    return _makespan(ctxs, t0, op, _schedule(n_nodes))


def run_replication(n_nodes):
    rig, ctxs, arena = _rig(n_nodes)
    log = OperationLog(arena.take(OperationLog.region_size(OPS + 8)), OPS + 8).format(ctxs[0])
    nr = NodeReplication(log, factory=lambda: [0], apply_fn=_apply_add)

    t0 = max(c.now() for c in ctxs)

    def op(ctx, is_read):
        replica = nr.replica(ctx)
        if is_read:
            replica.read_local(lambda s: s[0])  # common path: local
        else:
            replica.execute(ctx, 1)

    return _makespan(ctxs, t0, op, _schedule(n_nodes))


def _apply_add(state, op):
    state[0] += op
    return state[0]


def run_delegation(n_nodes):
    rig, ctxs, arena = _rig(n_nodes)
    state = [0]

    def handler(request: bytes) -> bytes:
        if request == b"inc":
            state[0] += 1
        return state[0].to_bytes(8, "little")

    svc = DelegationService(
        arena.take(DelegationService.region_size(n_nodes)), 0, n_nodes, handler
    ).format(ctxs[0])
    t0 = max(c.now() for c in ctxs)

    def op(ctx, is_read):
        request = b"get" if is_read else b"inc"
        if ctx.node_id == 0:  # owner fast path
            ctx.advance(svc.handler_cost_ns)
            handler(request)
        else:
            svc.call(ctx, ctxs[0], request)

    return _makespan(ctxs, t0, op, _schedule(n_nodes))


def run_rcu(n_nodes):
    rig, ctxs, arena = _rig(n_nodes)
    heap = SharedHeap(arena.take(1 << 21), 1 << 21).format(ctxs[0])
    reclaimer = EpochReclaimer(
        arena.take(EpochReclaimer.region_size(n_nodes)), n_nodes
    ).format(ctxs[0])
    cell = RcuCell(arena.take(8, align=8), heap, reclaimer).format(ctxs[0])
    cell.publish(ctxs[0], (0).to_bytes(8, "little"))
    t0 = max(c.now() for c in ctxs)
    step = [0]

    def op(ctx, is_read):
        if is_read:
            cell.read(ctx)
        else:
            cell.update(
                ctx,
                lambda cur: (int.from_bytes(cur, "little") + 1).to_bytes(8, "little"),
            )
        step[0] += 1
        if step[0] % 16 == 0:
            reclaimer.advance_and_reclaim(ctx)

    return _makespan(ctxs, t0, op, _schedule(n_nodes))


def run_bounded(n_nodes):
    """Bounded incoherence ([49]): reads tolerate 10 us of staleness."""
    from repro.flacdk.sync import BoundedStaleCell

    rig, ctxs, arena = _rig(n_nodes)
    cell = BoundedStaleCell(arena.take(128), capacity=8, bound_ns=10_000.0).format(ctxs[0])
    cell.write(ctxs[0], (0).to_bytes(8, "little"))
    t0 = max(c.now() for c in ctxs)

    def op(ctx, is_read):
        if is_read:
            cell.read(ctx, 8)
        else:
            current = int.from_bytes(cell.read_fresh(ctx, 8), "little")
            cell.write(ctx, (current + 1).to_bytes(8, "little"))

    return _makespan(ctxs, t0, op, _schedule(n_nodes))


METHODS = {
    "spinlock (strawman)": run_spinlock,
    "replication (NR)": run_replication,
    "delegation (ffwd)": run_delegation,
    "quiescence (RCU)": run_rcu,
    "bounded staleness [49]": run_bounded,
}


def run_all():
    return {label: {n: method(n) for n in NODE_COUNTS} for label, method in METHODS.items()}


@pytest.mark.benchmark(group="sync")
def test_sync_methods(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E3 — 90/10 read/write mix: wall makespan per op (us)",
        ["method"] + [f"{n} nodes" for n in NODE_COUNTS],
    )
    for label, by_nodes in results.items():
        table.add_row(label, *(f"{by_nodes[n] / 1000:.2f}" for n in NODE_COUNTS))
    notes = []
    for n in NODE_COUNTS:
        best_label = min(
            (m for m in METHODS if not m.startswith("spinlock")),
            key=lambda m: results[m][n],
        )
        notes.append(
            f"{n} nodes: {best_label} beats the lock by "
            f"{results['spinlock (strawman)'][n] / results[best_label][n]:.2f}x"
        )
    notes.append(
        "note: bounded staleness trades consistency for cost — its reads may "
        "lag writers by up to 10 us, a contract the linearisable methods never relax"
    )
    emit("E3_sync_methods", table.render() + "\n" + "\n".join(notes))
    for n in NODE_COUNTS:
        lock_free_best = min(results[m][n] for m in METHODS if not m.startswith("spinlock"))
        assert lock_free_best < results["spinlock (strawman)"][n]


@pytest.mark.benchmark(group="sync")
def test_replication_reads_are_local(benchmark):
    """The replication family's common path: reads touch no shared memory."""
    rig, ctxs, arena = benchmark.pedantic(lambda: _rig(2), rounds=1, iterations=1)
    log = OperationLog(arena.take(OperationLog.region_size(64)), 64).format(ctxs[0])
    nr = NodeReplication(log, factory=lambda: [0], apply_fn=_apply_add)
    nr.replica(ctxs[1]).execute(ctxs[1], 5)
    replica = nr.replica(ctxs[1])
    before = ctxs[1].now()
    for _ in range(100):
        replica.read_local(lambda s: s[0])
    assert ctxs[1].now() == before  # zero simulated cost: purely local
