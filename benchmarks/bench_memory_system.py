"""E8 — §3.3 ablation: the shared heterogeneous page table.

Measures the memory system's characteristic costs:

1. translation paths — TLB hit vs shared-table walk vs full fault;
2. rack-wide address-space sharing — install once, touch from every
   node, no page-table replication;
3. TLB shootdown cost as the node count grows;
4. page deduplication capacity savings across address spaces.
"""

import pytest

from repro.bench import Table, build_rig
from repro.core.memory import PAGE_SIZE, Placement

N_PAGES = 16


def run_translation_paths():
    rig = build_rig()
    aspace = rig.kernel.memory.create_address_space(rig.c0)
    va = aspace.mmap(rig.c0, PAGE_SIZE)
    aspace.write(rig.c0, va, b"x")  # fault the page in
    aspace.read(rig.c0, va, 8)  # warm the TLB (the fault path doesn't fill it)
    rig.align()

    t0 = rig.c0.now()
    aspace.read(rig.c0, va, 8)  # TLB hit
    tlb_hit_ns = rig.c0.now() - t0

    rig.kernel.memory.tlbs[0].invalidate_asid(rig.c0, aspace.asid)
    t0 = rig.c0.now()
    aspace.read(rig.c0, va, 8)  # shared-table walk, then refill
    walk_ns = rig.c0.now() - t0

    va2 = aspace.mmap(rig.c0, PAGE_SIZE)
    t0 = rig.c0.now()
    aspace.write(rig.c0, va2, b"y")  # full demand fault
    fault_ns = rig.c0.now() - t0
    return tlb_hit_ns, walk_ns, fault_ns


def run_rack_sharing():
    """One address space used from both nodes: writes on node 0 become
    readable on node 1 with no table replication, only cache maintenance."""
    rig = build_rig()
    memsys = rig.kernel.memory
    aspace = memsys.create_address_space(rig.c0)
    memsys.install(rig.c1, aspace)
    va = aspace.mmap(rig.c0, N_PAGES * PAGE_SIZE, placement=Placement.GLOBAL)
    payload = b"rackwide" * 512  # one page
    for p in range(N_PAGES):
        aspace.write(rig.c0, va + p * PAGE_SIZE, payload)
    aspace.publish(rig.c0, va, N_PAGES * PAGE_SIZE)
    rig.align()
    t0 = rig.c1.now()
    aspace.refresh(rig.c1, va, N_PAGES * PAGE_SIZE)
    for p in range(N_PAGES):
        assert aspace.read(rig.c1, va + p * PAGE_SIZE, 8) == b"rackwide"
    remote_ns = rig.c1.now() - t0
    return remote_ns / N_PAGES, aspace.fault_count


def run_shootdown_scaling():
    costs = {}
    for n_nodes in (2, 4, 8):
        rig = build_rig(
            n_nodes=n_nodes, topology="single_switch" if n_nodes > 2 else "dual_direct"
        )
        memsys = rig.kernel.memory
        ctxs = [rig.machine.context(i) for i in range(n_nodes)]
        aspace = memsys.create_address_space(ctxs[0])
        for ctx in ctxs[1:]:
            memsys.install(ctx, aspace)
        va = aspace.mmap(ctxs[0], PAGE_SIZE)
        aspace.write(ctxs[0], va, b"mapped")
        aspace.publish(ctxs[0], va, 6)
        for ctx in ctxs[1:]:
            aspace.refresh(ctx, va, 6)
            aspace.read(ctx, va, 6)  # everyone caches the translation
        rig.align()
        t0 = ctxs[0].now()
        memsys.unmap_range(ctxs[0], aspace, va, PAGE_SIZE, responders=ctxs[1:])
        costs[n_nodes] = ctxs[0].now() - t0
        for ctx in ctxs:
            assert memsys.tlbs[ctx.node_id].lookup(ctx, aspace.asid, va) is None
    return costs


def run_dedup():
    rig = build_rig()
    memsys = rig.kernel.memory
    spaces = []
    for i in range(4):
        ctx = rig.machine.context(i % 2)
        aspace = memsys.create_address_space(ctx)
        va = aspace.mmap(ctx, 2 * PAGE_SIZE)
        aspace.write(ctx, va, b"COMMON-RUNTIME-PAGE" * 215)  # identical everywhere
        aspace.write(ctx, va + PAGE_SIZE, b"unique-%d" % i * 100)  # distinct
        aspace.publish(ctx, va, 2 * PAGE_SIZE)
        spaces.append((aspace, va, ctx))
    used_before = memsys.frames_in_use(rig.c0)["global"]
    merged = memsys.dedup_global_frames(rig.c0)
    used_after = memsys.frames_in_use(rig.c0)["global"]
    # CoW still protects the shared frame
    aspace, va, ctx = spaces[0]
    aspace.write(ctx, va, b"DIVERGED")
    others_intact = all(
        s.read(c, v, 6) == b"COMMON" for s, v, c in spaces[1:]
    )
    return used_before, used_after, merged, others_intact


@pytest.mark.benchmark(group="memory")
def test_translation_paths(benchmark, emit):
    tlb_hit, walk, fault = benchmark.pedantic(run_translation_paths, rounds=1, iterations=1)
    table = Table(
        "E8a — translation path costs (8 B access)",
        ["path", "cost (us)"],
    )
    table.add_row("per-node TLB hit", tlb_hit / 1000)
    table.add_row("shared page-table walk (global memory)", walk / 1000)
    table.add_row("demand page fault", fault / 1000)
    emit(
        "E8a_translation",
        table.render()
        + f"\nthe TLB hides the shared table's global latency: walk/hit = {walk / tlb_hit:.0f}x",
    )
    assert tlb_hit < walk < fault


@pytest.mark.benchmark(group="memory")
def test_rack_wide_sharing(benchmark, emit):
    per_page_ns, faults = benchmark.pedantic(run_rack_sharing, rounds=1, iterations=1)
    emit(
        "E8b_rack_sharing",
        f"remote node reads a shared address space at {per_page_ns / 1000:.2f} us/page "
        f"after publish/refresh; total demand faults: {faults} "
        f"(no second fault per page on the remote node — the table is shared)",
    )
    assert faults == N_PAGES  # only the writer faulted; the reader reused PTEs


@pytest.mark.benchmark(group="memory")
def test_shootdown_scaling(benchmark, emit):
    costs = benchmark.pedantic(run_shootdown_scaling, rounds=1, iterations=1)
    table = Table("E8c — unmap + rack-wide TLB shootdown", ["nodes", "cost (us)"])
    for n, ns in costs.items():
        table.add_row(n, ns / 1000)
    emit("E8c_shootdown", table.render())
    assert costs[8] > costs[2]  # more responders, more doorbell traffic


@pytest.mark.benchmark(group="memory")
def test_dedup_savings(benchmark, emit):
    used_before, used_after, merged, others_intact = benchmark.pedantic(run_dedup, rounds=1, iterations=1)
    emit(
        "E8d_dedup",
        f"4 address spaces, 8 frames: dedup merged {merged} duplicates, "
        f"global frames {used_before} -> {used_after}; CoW kept sharers intact: {others_intact}",
    )
    assert merged == 3  # four identical pages become one
    assert used_after == used_before - 3
    assert others_intact
