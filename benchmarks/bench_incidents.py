"""Incident benchmark — scoring the rack's ops loop, detection on vs off.

Runs every scenario in the incident catalogue
(:mod:`repro.telemetry.incidents`) twice with detection on (replay
determinism witness) and once with detection off, and reports MTTD,
localization accuracy, MTTM, and blast radius per scenario — the
operator-in-the-loop metrics the paper's coordinated-sharing pitch
rests on.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_incidents.py            # full run
    PYTHONPATH=src python benchmarks/bench_incidents.py --smoke    # CI gate

A full run writes ``BENCH_incidents.json`` at the repo root (override
with ``--json``); smoke runs (first scenario only) write only when
``--json`` is given.  The gate (both modes) requires: the two
detection-on runs byte-identical (journal, dump, scores); detection-on
MTTD finite and localization recall positive for every scenario; and
detection-on **strictly** dominating detection-off on MTTM in every
scenario (exit 1 otherwise).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.telemetry.incidents import run_scenario, scenarios

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_incidents.json"

SCHEMA_VERSION = 1


def _score_row(score: dict) -> dict:
    loc = score["localization"]
    blast = score["blast_radius"]
    return {
        "t0_ns": score["t0_ns"],
        "mttd_ns": score["mttd_ns"],
        "mttm_ns": score["mttm_ns"],
        "recovered": score["recovered"],
        "precision": loc["precision"],
        "recall": loc["recall"],
        "f1": loc["f1"],
        "blame_sites": len(loc["blame"]),
        "truth_sites": len(loc["truth"]),
        "tenants_degraded": blast["tenants"],
        "requests_lost": blast["requests_lost"],
        "degraded_windows": blast["degraded_windows"],
    }


def bench_scenario(scenario) -> Dict[str, object]:
    """One scenario: detection-on twice (replay witness) + detection-off."""
    t0 = time.perf_counter()
    on = run_scenario(scenario, detection=True)
    replay = run_scenario(scenario, detection=True)
    off = run_scenario(scenario, detection=False)
    wall = time.perf_counter() - t0
    dump_on = json.dumps(on.dump, sort_keys=True)
    dump_replay = json.dumps(replay.dump, sort_keys=True)
    return {
        "scenario": scenario.name,
        "detection_on": _score_row(on.score),
        "detection_off": _score_row(off.score),
        "mttm_delta_ns": (off.score["mttm_ns"] or 0.0)
        - (on.score["mttm_ns"] or 0.0),
        "determinism": {
            "journals_match": on.report.digest == replay.report.digest,
            "dumps_match": dump_on == dump_replay,
            "scores_match": on.score == replay.score,
            "journal_digest": on.report.digest,
        },
        "wall_s": round(wall, 4),
    }


def run(smoke: bool = False) -> dict:
    table = scenarios()
    names = list(table)[:1] if smoke else list(table)
    rows = [bench_scenario(table[name]) for name in names]
    return {"scenarios": rows}


def check_gate(report: dict, smoke: bool) -> List[str]:
    failures: List[str] = []
    for row in report["scenarios"]:
        name = row["scenario"]
        det = row["determinism"]
        if not (det["journals_match"] and det["dumps_match"] and det["scores_match"]):
            failures.append(
                f"gate[{name}]: two detection-on runs were not byte-identical"
            )
        on, off = row["detection_on"], row["detection_off"]
        if on["mttd_ns"] is None:
            failures.append(f"gate[{name}]: detection-on never detected the incident")
        if on["recall"] is None or on["recall"] <= 0.0:
            failures.append(f"gate[{name}]: detection-on localization recall is zero")
        if not (off["mttm_ns"] > on["mttm_ns"]):
            failures.append(
                f"gate[{name}]: detection-on MTTM {on['mttm_ns']} does not "
                f"strictly beat detection-off {off['mttm_ns']}"
            )
        if off["requests_lost"] <= 0:
            failures.append(
                f"gate[{name}]: detection-off lost zero requests — "
                "campaign too gentle"
            )
    return failures


def _ms(value) -> str:
    return "n/a" if value is None else f"{value / 1e6:8.3f}"


def render(report: dict) -> str:
    lines = [
        "== scored incident benchmark (detection on vs off) ==",
        f"{'scenario':>14}  {'MTTD_on':>8}  {'MTTM_on':>8}  {'MTTM_off':>8}  "
        f"{'F1_on':>6}  {'recall':>6}  {'lost_off':>8}  {'replay':>6}",
    ]
    for row in report["scenarios"]:
        on, off, det = row["detection_on"], row["detection_off"], row["determinism"]
        lines.append(
            f"{row['scenario']:>14}  {_ms(on['mttd_ns']):>8}  "
            f"{_ms(on['mttm_ns']):>8}  {_ms(off['mttm_ns']):>8}  "
            f"{on['f1']:>6.3f}  {on['recall']:>6.3f}  "
            f"{off['requests_lost']:>8.0f}  "
            f"{'yes' if det['journals_match'] and det['dumps_match'] else 'NO':>6}"
        )
    lines.append("(times in ms of simulated clock; lost_off = requests the "
                 "undetected arm failed)")
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="first scenario only (<60 s); the CI gate")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run(smoke=args.smoke)
    report_doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "incidents",
        "mode": mode,
        **report,
        "note": (
            "Each scenario injects a seeded chaos campaign (UE storms, link "
            "flaps, crash cascades, CE slow leaks, breaker storms) under "
            "open-loop traffic and scores the ops loop from the flight-"
            "recorder dump: MTTD (injection to first correct SLO alert or "
            "anomaly), localization precision/recall/F1 (blame set vs "
            "injected fault sites), MTTM (injection to the last availability-"
            "degraded window), blast radius (tenants/requests lost).  "
            "'detection on' wires SLO burn alerts, anomaly detectors, and "
            "the machine crash hook into the circuit breakers; 'off' leaves "
            "mitigation with inline evidence only.  All times are simulated "
            "nanoseconds; same seed => byte-identical journals, dumps, and "
            "scores."
        ),
    }
    print(render(report))

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report_doc, indent=2) + "\n")
        print(f"\nwrote {out}")

    failures = check_gate(report, smoke=args.smoke)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
