"""E5 — §3.5 ablation: IPC/RPC vs TCP/RDMA across message sizes.

One-way message latency and the per-message breakdown for four
transports: FlacOS IPC (inline and zero-copy descriptor paths), RDMA
verbs, and kernel TCP.  The paper's structural claim: shared memory
eliminates transfer entirely — cost is flat-ish in size because only
cache-line traffic scales, not copies + packets.
"""

import pytest

from repro.apps.redis import connect_over_flacos  # noqa: F401 (documented sibling)
from repro.bench import Table, build_rig
from repro.net import RdmaNetwork, TcpNetwork

SIZES = (64, 1024, 4096, 16384, 65536)
ROUNDS = 30


def _one_way(send_fn, recv_fn, c_send, c_recv, payload):
    t0_send, t0_recv = c_send.now(), c_recv.now()
    send_fn(payload)
    got = recv_fn()
    assert got == payload
    return (c_send.now() - t0_send) + (c_recv.now() - t0_recv)


def run_flacos(size):
    rig = build_rig()
    ipc = rig.kernel.ipc
    listener = ipc.listen(rig.c1, "e5")
    client = ipc.connect(rig.c0, "e5")
    server = listener.accept(rig.c1)
    rig.align()
    payload = b"m" * size
    total = 0.0
    for _ in range(ROUNDS):
        total += _one_way(
            lambda p: client.send(rig.c0, p), lambda: server.recv(rig.c1), rig.c0, rig.c1, payload
        )
    return total / ROUNDS


def run_flacos_zero_copy(size):
    rig = build_rig()
    ipc = rig.kernel.ipc
    listener = ipc.listen(rig.c1, "e5z")
    client = ipc.connect(rig.c0, "e5z")
    server = listener.accept(rig.c1)
    rig.align()
    payload = b"m" * size
    total = 0.0
    for _ in range(ROUNDS):
        t0, t1 = rig.c0.now(), rig.c1.now()
        ref = ipc.buffers.put(rig.c0, payload)
        client.send_buffer(rig.c0, ref)
        got = server.recv_buffer(rig.c1)
        data = ipc.buffers.get(rig.c1, got)
        ipc.buffers.free(rig.c1, got)
        assert data == payload
        total += (rig.c0.now() - t0) + (rig.c1.now() - t1)
    return total / ROUNDS


def run_rdma(size):
    rig = build_rig()
    qp = RdmaNetwork().create_qp(0, 1)
    rig.align()
    payload = b"m" * size
    total = 0.0
    for _ in range(ROUNDS):
        total += _one_way(
            lambda p: qp.post_send(rig.c0, p), lambda: qp.poll_recv(rig.c1), rig.c0, rig.c1, payload
        )
    return total / ROUNDS


def run_tcp(size):
    rig = build_rig()
    net = TcpNetwork()
    net.listen(rig.c1, "e5t")
    conn = net.connect(rig.c0, "e5t")
    rig.align()
    payload = b"m" * size
    total = 0.0
    for _ in range(ROUNDS):
        total += _one_way(
            lambda p: conn.send(rig.c0, p), lambda: conn.recv(rig.c1), rig.c0, rig.c1, payload
        )
    return total / ROUNDS


TRANSPORTS = {
    "FlacOS IPC": run_flacos,
    "FlacOS zero-copy": run_flacos_zero_copy,
    "RDMA verbs": run_rdma,
    "kernel TCP": run_tcp,
}


def run_all():
    return {label: {size: fn(size) for size in SIZES} for label, fn in TRANSPORTS.items()}


@pytest.mark.benchmark(group="ipc")
def test_transport_latency_by_size(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E5 — one-way message cost by transport (us, sender+receiver CPU)",
        ["transport"] + [f"{s} B" for s in SIZES],
    )
    for label, by_size in results.items():
        table.add_row(label, *(f"{by_size[s] / 1000:.2f}" for s in SIZES))
    notes = []
    for size in SIZES:
        best = min(results[t][size] for t in TRANSPORTS if t.startswith("FlacOS"))
        notes.append(
            f"{size} B: FlacOS vs TCP {results['kernel TCP'][size] / best:.2f}x, "
            f"vs RDMA {results['RDMA verbs'][size] / best:.2f}x"
        )
    notes.append(
        "RDMA wins raw small-message one-way latency (kernel bypass vs the"
        " domain-socket syscall path) but must transfer every byte; the"
        " descriptor test below shows the shared-memory advantage RDMA"
        " cannot have."
    )
    emit("E5_ipc_transport", table.render() + "\n" + "\n".join(notes))
    for size in SIZES:
        flacos_best = min(
            results["FlacOS IPC"][size], results["FlacOS zero-copy"][size]
        )
        # FlacOS always beats the TCP stack, at every size (Figure 4's claim)
        assert flacos_best < results["kernel TCP"][size]
    # shared memory out-bandwidths the 25 GbE wire for bulk payloads
    flacos_bulk = min(results["FlacOS IPC"][65536], results["FlacOS zero-copy"][65536])
    assert flacos_bulk < results["RDMA verbs"][65536] * 1.25
    # the crossover structure: TCP's tax grows with size much faster
    tcp_growth = results["kernel TCP"][65536] / results["kernel TCP"][64]
    flacos_growth = results["FlacOS zero-copy"][65536] / results["FlacOS zero-copy"][64]
    assert tcp_growth > flacos_growth


@pytest.mark.benchmark(group="ipc")
def test_descriptor_handoff_is_size_independent(benchmark, emit):
    """The true zero-copy win: handing a buffer to a peer that reads only
    the header costs the same whether the payload is 1 KiB or 512 KiB."""
    rig = benchmark.pedantic(build_rig, rounds=1, iterations=1)
    ipc = rig.kernel.ipc
    listener = ipc.listen(rig.c1, "e5d")
    client = ipc.connect(rig.c0, "e5d")
    server = listener.accept(rig.c1)
    rig.align()
    costs = {}
    for size in (1024, 1 << 19):
        payload = b"h" * size
        t0, t1 = rig.c0.now(), rig.c1.now()
        ref = ipc.buffers.put(rig.c0, payload)
        client.send_buffer(rig.c0, ref)
        got = server.recv_buffer(rig.c1)
        rig.c1.invalidate(got.addr, 64)
        header = rig.c1.load(got.addr, 64)  # peer inspects only the header
        assert header == b"h" * 64
        ipc.buffers.free(rig.c1, got)
        costs[size] = (rig.c0.now() - t0) + (rig.c1.now() - t1)
    # producing the buffer costs bandwidth, but the *handoff+inspect* side
    # scales with what the consumer touches, not the payload size
    assert costs[1 << 19] < costs[1024] * 40
