"""E4 — §3.4 ablation: shared vs private page cache.

N nodes read the same file set.  The shared cache holds one copy per
rack (capacity win) and serves every node's first read from memory once
any node loaded it (latency win); the per-node baseline duplicates
pages and always misses on a node's first touch.
"""

import pytest

from repro.bench import Table, build_rig
from repro.core.fs import FlacFS, PAGE_SIZE, PrivateCacheFS
from repro.flacdk.arena import Arena

N_FILES = 4
PAGES_PER_FILE = 8
FILE_BYTES = PAGES_PER_FILE * PAGE_SIZE


def run_shared(n_nodes):
    rig = build_rig(n_nodes=n_nodes, topology="single_switch" if n_nodes > 2 else "dual_direct")
    fs = rig.kernel.fs
    ctxs = [rig.machine.context(i) for i in range(n_nodes)]
    writer = ctxs[0]
    for f in range(N_FILES):
        fd = fs.open(writer, f"/shared{f}", create=True)
        fs.write(writer, fd, 0, b"%d" % f * FILE_BYTES)
        fs.fsync(writer)
    rig.align()  # readers start after the writer finished (wall order)
    loads_before = fs.page_cache.stats.loads_from_device
    read_ns = []
    for ctx in ctxs[1:]:
        t0 = ctx.now()
        for f in range(N_FILES):
            fd = fs.open(ctx, f"/shared{f}")
            fs.read(ctx, fd, 0, FILE_BYTES)
        read_ns.append(ctx.now() - t0)
    return {
        "footprint": fs.cache_footprint_bytes(ctxs[0]),
        "device_loads": fs.page_cache.stats.loads_from_device - loads_before,
        "mean_read_ns": sum(read_ns) / max(1, len(read_ns)),
        "hit_rate": fs.page_cache.stats.hit_rate(),
    }


def run_private(n_nodes):
    rig = build_rig(n_nodes=n_nodes, topology="single_switch" if n_nodes > 2 else "dual_direct")
    pfs = PrivateCacheFS()
    ctxs = [rig.machine.context(i) for i in range(n_nodes)]
    writer = ctxs[0]
    for f in range(N_FILES):
        pfs.create(writer, f"/shared{f}")
        pfs.write(writer, f"/shared{f}", 0, b"%d" % f * FILE_BYTES)
    rig.align()
    reads_before = pfs.device.reads
    read_ns = []
    for ctx in ctxs[1:]:
        t0 = ctx.now()
        for f in range(N_FILES):
            pfs.read(ctx, f"/shared{f}", 0, FILE_BYTES)
        read_ns.append(ctx.now() - t0)
    return {
        "footprint": pfs.cache_footprint_bytes(),
        "device_loads": pfs.device.reads - reads_before,
        "mean_read_ns": sum(read_ns) / max(1, len(read_ns)),
        "hit_rate": pfs.hits / max(1, pfs.hits + pfs.misses),
    }


def run_all():
    return {n: (run_shared(n), run_private(n)) for n in (2, 4, 8)}


@pytest.mark.benchmark(group="page-cache")
def test_shared_vs_private_page_cache(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E4 — page cache: shared (FlacFS) vs per-node private",
        ["nodes", "cache", "rack footprint (KiB)", "device loads", "reader latency (us)"],
    )
    for n, (shared, private) in results.items():
        table.add_row(n, "shared", shared["footprint"] // 1024, shared["device_loads"],
                      shared["mean_read_ns"] / 1000)
        table.add_row(n, "private", private["footprint"] // 1024, private["device_loads"],
                      private["mean_read_ns"] / 1000)
    notes = []
    for n, (shared, private) in results.items():
        notes.append(
            f"{n} nodes: shared cache uses {private['footprint'] / shared['footprint']:.1f}x "
            f"less memory and readers are {private['mean_read_ns'] / shared['mean_read_ns']:.1f}x faster"
        )
    emit("E4_page_cache", table.render() + "\n" + "\n".join(notes))
    for n, (shared, private) in results.items():
        assert shared["footprint"] < private["footprint"]
        assert shared["device_loads"] == 0  # other nodes never touch the disk
        assert private["device_loads"] > 0
        assert shared["mean_read_ns"] < private["mean_read_ns"]


@pytest.mark.benchmark(group="page-cache")
def test_footprint_scales_with_nodes_only_for_private(benchmark, emit):
    """Shared footprint is flat in node count; private grows linearly."""
    shared = benchmark.pedantic(lambda: {n: run_shared(n)["footprint"] for n in (2, 8)}, rounds=1, iterations=1)
    private = {n: run_private(n)["footprint"] for n in (2, 8)}
    assert shared[8] == shared[2]
    assert private[8] > private[2] * 3
