"""E11 — §3.3: rack memory retires swapping (and compression).

The paper claims rack-scale shared memory "naturally realizes memory
disaggregation", making swap and compression tiers unnecessary.  This
bench gives one application a working set larger than its local-DRAM
budget and touches it three ways:

* **swap to SSD** — classic overflow to a swap device;
* **zswap + SSD** — a compressed in-memory tier in front of the device;
* **FlacOS global memory** — the overflow pages simply *live* in
  interconnect-attached memory; every access is a plain load.

The figure of merit is per-touch latency under a uniformly random
access pattern that defeats the resident-set LRU.
"""

import numpy as np
import pytest

from repro.bench import Table, build_rig
from repro.core.memory import PAGE_SIZE, Placement
from repro.core.memory.swap import SwapBackedMemory

WORKING_SET_PAGES = 96
RESIDENT_BUDGET = 32  # local DRAM holds a third of the working set
TOUCHES = 300


def _access_pattern():
    rng = np.random.default_rng(42)
    return [int(v) for v in rng.integers(0, WORKING_SET_PAGES, size=TOUCHES)]


def run_swap(zswap_pages: int):
    rig = build_rig()
    memory = SwapBackedMemory(RESIDENT_BUDGET, zswap_pages=zswap_pages)
    pattern = _access_pattern()
    # populate the full working set once
    for vpn in range(WORKING_SET_PAGES):
        memory.touch(rig.c0, vpn, write=True, fill=b"%d" % vpn)
    rig.align()
    t0 = rig.c0.now()
    for vpn in pattern:
        page = memory.touch(rig.c0, vpn)
        assert page.startswith(b"%d" % vpn)
    return (rig.c0.now() - t0) / TOUCHES, memory.stats


def run_flacos_global():
    rig = build_rig()
    aspace = rig.kernel.memory.create_address_space(rig.c0)
    va = aspace.mmap(rig.c0, WORKING_SET_PAGES * PAGE_SIZE, placement=Placement.GLOBAL)
    for vpn in range(WORKING_SET_PAGES):
        aspace.write(rig.c0, va + vpn * PAGE_SIZE, b"%d" % vpn)
    pattern = _access_pattern()
    rig.align()
    t0 = rig.c0.now()
    for vpn in pattern:
        data = aspace.read(rig.c0, va + vpn * PAGE_SIZE, 8)
        assert data.startswith(b"%d" % vpn)
    return (rig.c0.now() - t0) / TOUCHES, aspace.fault_count


def run_all():
    swap_ns, swap_stats = run_swap(zswap_pages=0)
    zswap_ns, zswap_stats = run_swap(zswap_pages=24)
    global_ns, faults = run_flacos_global()
    return swap_ns, swap_stats, zswap_ns, zswap_stats, global_ns, faults


@pytest.mark.benchmark(group="far-memory")
def test_far_memory_tiers(benchmark, emit):
    swap_ns, swap_stats, zswap_ns, zswap_stats, global_ns, faults = benchmark.pedantic(
        run_all, rounds=1, iterations=1
    )
    table = Table(
        "E11 — 3x-over-budget working set, random touches (per-touch cost)",
        ["memory service", "cost (us)", "major faults", "device I/O"],
    )
    table.add_row(
        "swap to SSD", swap_ns / 1000, swap_stats.major_faults,
        swap_stats.swap_ins + swap_stats.swap_outs,
    )
    table.add_row(
        "zswap + SSD", zswap_ns / 1000, zswap_stats.major_faults,
        zswap_stats.swap_ins + zswap_stats.swap_outs,
    )
    table.add_row("FlacOS global memory", global_ns / 1000, 0, 0)
    emit(
        "E11_far_memory",
        table.render()
        + f"\nglobal memory beats swap {swap_ns / global_ns:.0f}x and zswap "
        f"{zswap_ns / global_ns:.0f}x per touch — the services §3.3 retires",
    )
    # the paper's ordering: plain global memory << compressed tier << swap
    assert global_ns < zswap_ns < swap_ns
    # and the win is drastic, not incremental
    assert swap_ns > 10 * global_ns
    assert faults == WORKING_SET_PAGES  # faulted once each, never again
