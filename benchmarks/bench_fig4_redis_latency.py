"""E1 — Figure 4: Redis request latency, FlacOS IPC vs kernel TCP.

Reproduces the paper's headline experiment: MiniRedis server on node 1,
client on node 0, SET and GET at two request sizes, FlacOS shared-memory
IPC against the direct-Ethernet TCP baseline.  The paper reports a
1.75-2.4x latency reduction; the bench prints the same series and
asserts the measured ratios fall in (a tolerance band around) it.
"""

import statistics

import pytest

from repro.apps.redis import connect_over_flacos, connect_over_tcp
from repro.bench import Table, build_rig, check_ratio
from repro.net import TcpNetwork
from repro.workloads import ValueGenerator

SIZES = (64, 4096)
REQUESTS = 120
PAPER_BAND = (1.75, 2.4)


def _run_side(kind: str, size: int):
    """Mean latency (ns) of SET and GET at one request size."""
    rig = build_rig()
    if kind == "flacos":
        client, _ = connect_over_flacos(rig.kernel.ipc, rig.c0, rig.c1)
    else:
        client, _ = connect_over_tcp(TcpNetwork(), rig.c0, rig.c1)
    values = ValueGenerator(size=size, seed=1)
    set_ns, get_ns = [], []
    for i in range(REQUESTS):
        key = b"bench:%06d" % i
        _, ns = client.timed_request(b"SET", key, values.value_for(key))
        set_ns.append(ns)
        _, ns = client.timed_request(b"GET", key)
        get_ns.append(ns)
    return statistics.mean(set_ns), statistics.mean(get_ns)


def run_figure4():
    rows = []
    for size in SIZES:
        flacos_set, flacos_get = _run_side("flacos", size)
        tcp_set, tcp_get = _run_side("tcp", size)
        rows.append((size, "SET", tcp_set, flacos_set, tcp_set / flacos_set))
        rows.append((size, "GET", tcp_get, flacos_get, tcp_get / flacos_get))
    return rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_redis_latency(benchmark, emit):
    rows = benchmark.pedantic(run_figure4, rounds=1, iterations=1)
    table = Table(
        "Figure 4 — Redis request latency (client node 0 -> server node 1)",
        ["size (B)", "op", "networking (us)", "FlacOS (us)", "reduction"],
    )
    messages = []
    all_ok = True
    for size, op, tcp_ns, flacos_ns, ratio in rows:
        table.add_row(size, op, tcp_ns / 1000, flacos_ns / 1000, f"{ratio:.2f}x")
        ok, message = check_ratio(f"{op}@{size}B", ratio, *PAPER_BAND)
        messages.append(message)
        all_ok = all_ok and ok
    emit("E1_fig4_redis_latency", table.render() + "\n" + "\n".join(messages))
    assert all_ok, "a Figure 4 ratio fell outside the paper band; see emitted table"


def run_pipelined(kind: str, batch: int = 100):
    rig = build_rig()
    if kind == "flacos":
        client, _ = connect_over_flacos(rig.kernel.ipc, rig.c0, rig.c1)
    else:
        client, _ = connect_over_tcp(TcpNetwork(), rig.c0, rig.c1)
    rig.align()
    commands = [(b"SET", b"p%06d" % i, b"v" * 64) for i in range(batch)]
    replies, ns = client.timed_pipeline(commands)
    assert replies == ["OK"] * batch
    return ns / batch


@pytest.mark.benchmark(group="fig4")
def test_fig4_pipelined_throughput(benchmark, emit):
    """Beyond the figure: pipelining is the usual counter-argument to
    per-request latency comparisons ("just batch!").  Batching amortises
    the network's round trips but not its per-byte copies and per-packet
    processing — FlacOS still wins, by less."""

    def run():
        return run_pipelined("flacos"), run_pipelined("tcp")

    flacos_ns, tcp_ns = benchmark.pedantic(run, rounds=1, iterations=1)
    emit(
        "E1b_fig4_pipelined",
        f"pipelined (batch 100, 64 B SETs): FlacOS {flacos_ns / 1000:.2f} us/op, "
        f"TCP {tcp_ns / 1000:.2f} us/op -> {tcp_ns / flacos_ns:.2f}x "
        f"(unpipelined Figure 4 point was ~2.4x: batching helps the "
        f"baseline but cannot remove its copy + stack tax)",
    )
    assert flacos_ns < tcp_ns
