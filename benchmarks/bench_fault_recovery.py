"""E6 — §3.6 ablation: fault boxes, blast radius, adaptive redundancy.

Three measurements:

1. **Blast radius** — an uncorrectable error hits one app's page; with
   vertical fault boxes exactly one of N apps is recovered, while the
   horizontal baseline (state pooled across apps) must recover all N.
2. **Recovery latency by redundancy mode** — NONE / CHECKPOINT /
   REPLICATE for the same app after a node crash.
3. **Redundancy overhead** — what each mode costs during normal
   operation (the price of the protection).
"""

import pytest

from repro.bench import Table, build_rig
from repro.chaos import CampaignRunner, ChaosCampaign, boxes_recovered, event, survivor_liveness
from repro.core.fault import (
    AdaptiveRedundancyPolicy,
    FaultBoxManager,
    FaultRecoveryCoordinator,
    PartialReplicator,
    RedundancyMode,
)
from repro.core.memory import PAGE_SIZE
from repro.flacdk.alloc import FrameAllocator
from repro.rack.faults import FaultEvent, FaultKind
from repro.rack.memory import UncorrectableMemoryError

N_APPS = 6
PAGES_PER_APP = 4


def _boxes_rig(criticality=1):
    rig = build_rig()
    manager = rig.kernel.boxes
    boxes = []
    for i in range(N_APPS):
        box = manager.create_box(rig.c0, f"app{i}", criticality=criticality)
        va = box.aspace.mmap(rig.c0, PAGES_PER_APP * PAGE_SIZE)
        for p in range(PAGES_PER_APP):
            box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"app%d:p%d " % (i, p) * 64)
        boxes.append((box, va))
    return rig, manager, boxes


def run_blast_radius():
    rig, manager, boxes = _boxes_rig()
    for box, _ in boxes:
        manager.snapshot(rig.c0, box)
    coordinator = FaultRecoveryCoordinator(manager, AdaptiveRedundancyPolicy())
    victim_box, victim_va = boxes[2]
    frame = victim_box.aspace.page_table.try_translate(rig.c0, victim_va).frame_addr
    rig.align()
    t0 = rig.c0.now()
    event = FaultEvent(FaultKind.UNCORRECTABLE, time_ns=t0, addr=frame + 8)
    report = coordinator.handle_memory_fault(rig.c0, event)
    vertical_ns = rig.c0.now() - t0
    vertical_radius = report.blast_radius_boxes

    # horizontal baseline: state pooled -> every app must be recovered
    t0 = rig.c0.now()
    for box, _ in boxes:
        manager.restore(rig.c0, box)
    horizontal_ns = rig.c0.now() - t0
    return vertical_radius, vertical_ns, N_APPS, horizontal_ns


def run_recovery_modes():
    results = {}
    for criticality, label in ((0, "NONE (restart)"), (1, "CHECKPOINT"), (2, "REPLICATE")):
        rig = build_rig()
        manager = rig.kernel.boxes
        box = manager.create_box(rig.c0, "svc", criticality=criticality)
        va = box.aspace.mmap(rig.c0, PAGES_PER_APP * PAGE_SIZE)
        for p in range(PAGES_PER_APP):
            box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"state%d " % p * 100)
        standby = FrameAllocator(
            rig.kernel.arena.take(1 << 21, align=PAGE_SIZE), 1 << 21
        ).format(rig.c0)
        replicator = PartialReplicator(manager, standby)
        coordinator = FaultRecoveryCoordinator(
            manager, AdaptiveRedundancyPolicy(), replicator=replicator
        )
        # normal-operation protection cost
        rig.align()
        t0 = rig.c0.now()
        if criticality == 1:
            manager.snapshot(rig.c0, box)
        elif criticality == 2:
            replicator.enable(box)
            replicator.sync(rig.c0, box)
        overhead_ns = rig.c0.now() - t0
        # crash the home node, recover on the survivor
        rig.machine.crash_node(0)
        t0 = rig.c1.now()
        report = coordinator.handle_node_crash(rig.c1, dead_node=0)
        recovery_ns = rig.c1.now() - t0
        recovered = report.recoveries[0]
        state_ok = criticality > 0 and box.aspace.read(rig.c1, va, 6) == b"state0"
        results[label] = {
            "mode": recovered.mode,
            "overhead_ns": overhead_ns,
            "recovery_ns": recovery_ns,
            "pages": recovered.pages_restored,
            "state_ok": state_ok,
        }
    return results


@pytest.mark.benchmark(group="fault")
def test_blast_radius(benchmark, emit):
    vertical_radius, vertical_ns, horizontal_radius, horizontal_ns = benchmark.pedantic(
        run_blast_radius, rounds=1, iterations=1
    )
    table = Table(
        "E6a — blast radius of one uncorrectable error (6 apps on the rack)",
        ["isolation", "apps recovered", "recovery time (us)"],
    )
    table.add_row("vertical fault boxes", vertical_radius, vertical_ns / 1000)
    table.add_row("horizontal (pooled state)", horizontal_radius, horizontal_ns / 1000)
    emit(
        "E6a_blast_radius",
        table.render()
        + f"\nfault boxes recover {horizontal_radius / vertical_radius:.0f}x fewer apps, "
        f"{horizontal_ns / vertical_ns:.1f}x faster",
    )
    assert vertical_radius == 1
    assert vertical_ns < horizontal_ns


@pytest.mark.benchmark(group="fault")
def test_recovery_modes(benchmark, emit):
    results = benchmark.pedantic(run_recovery_modes, rounds=1, iterations=1)
    table = Table(
        "E6b — recovery by redundancy mode (node crash, 4-page app)",
        ["mode", "normal-op overhead (us)", "recovery (us)", "pages restored", "state intact"],
    )
    for label, r in results.items():
        table.add_row(
            label, r["overhead_ns"] / 1000, r["recovery_ns"] / 1000, r["pages"], r["state_ok"]
        )
    emit("E6b_recovery_modes", table.render())
    assert results["NONE (restart)"]["pages"] == 0
    assert not results["NONE (restart)"]["state_ok"]
    assert results["CHECKPOINT"]["state_ok"]
    assert results["REPLICATE"]["state_ok"]
    assert results["REPLICATE"]["mode"] is RedundancyMode.REPLICATE
    # protection costs rank: NONE < {CHECKPOINT, REPLICATE}
    assert results["NONE (restart)"]["overhead_ns"] < results["CHECKPOINT"]["overhead_ns"]
    assert results["NONE (restart)"]["overhead_ns"] < results["REPLICATE"]["overhead_ns"]


@pytest.mark.benchmark(group="fault")
def test_incremental_replication_overhead(benchmark, emit):
    """REPLICATE's steady-state cost: only dirtied pages cross at barriers."""
    rig = benchmark.pedantic(build_rig, rounds=1, iterations=1)
    manager = rig.kernel.boxes
    box = manager.create_box(rig.c0, "svc", criticality=2)
    va = box.aspace.mmap(rig.c0, 16 * PAGE_SIZE)
    for p in range(16):
        box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"x" * 64)
    standby = FrameAllocator(rig.kernel.arena.take(1 << 21, align=PAGE_SIZE), 1 << 21).format(rig.c0)
    replicator = PartialReplicator(manager, standby)
    replicator.enable(box)
    t0 = rig.c0.now()
    first = replicator.sync(rig.c0, box)
    full_ns = rig.c0.now() - t0
    box.aspace.write(rig.c0, va, b"touched")
    t0 = rig.c0.now()
    second = replicator.sync(rig.c0, box)
    incr_ns = rig.c0.now() - t0
    emit(
        "E6c_incremental_replication",
        f"full sync: {first} pages in {full_ns / 1000:.1f} us; "
        f"incremental: {second} page(s) in {incr_ns / 1000:.1f} us",
    )
    assert first == 16 and second == 1
    assert incr_ns < full_ns


def run_self_healing(heal):
    """One chaos campaign of UE storms against protected apps.

    ``heal=True`` runs with the kernel's repair pipeline installed
    (detect -> repair -> retry, plus patrol scrubbing between steps);
    ``heal=False`` uninstalls the handler so every UE surfaces and the
    box-level recovery coordinator must restore whole boxes.
    """
    rig = build_rig()
    kernel = rig.kernel
    manager = kernel.boxes
    boxes = []
    for i in range(N_APPS):
        box = manager.create_box(rig.c0, f"app{i}", criticality=2)
        va = box.aspace.mmap(rig.c0, PAGES_PER_APP * PAGE_SIZE)
        for p in range(PAGES_PER_APP):
            box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"app%d:p%d " % (i, p) * 64)
        manager.snapshot(rig.c0, box)
        kernel.replicator.enable(box)
        kernel.replicator.sync(rig.c0, box)
        boxes.append((box, va))
    if not heal:
        rig.machine.set_repair_handler(None)

    def frames_of(box, va):
        return [
            box.aspace.page_table.try_translate(rig.c0, va + p * PAGE_SIZE).frame_addr
            for p in range(PAGES_PER_APP)
        ]

    targets = tuple(f for box, va in boxes for f in frames_of(box, va))
    campaign = ChaosCampaign(
        name="e6d-ue-storms",
        seed=1234,
        events=(
            event("ue_storm", at_step=0, count=8, targets=targets),
            event("correlated_lines", at_step=0, lines=4, stride=PAGE_SIZE, base=targets[0]),
            event("ue_storm", at_step=2, count=8, targets=targets),
        ),
        description="two UE storms plus one correlated line failure on app pages",
    )

    incidents = {"surfaced": 0, "recovery_ns": 0.0, "blast_boxes": 0}

    def workload(step, ctx):
        # every app touches all of its pages each step; cold caches so the
        # reads actually reach (possibly poisoned) backing memory
        for box, va in boxes:
            for p, frame in enumerate(frames_of(box, va)):
                ctx.invalidate(frame, PAGE_SIZE)
                try:
                    box.aspace.read(ctx, va + p * PAGE_SIZE, PAGE_SIZE)
                except UncorrectableMemoryError as exc:
                    incidents["surfaced"] += 1
                    t0 = ctx.now()
                    report = kernel.recovery.handle_memory_fault(
                        ctx,
                        FaultEvent(
                            FaultKind.UNCORRECTABLE,
                            time_ns=t0,
                            addr=exc.addr,
                            node_id=exc.node_id,
                        ),
                    )
                    incidents["recovery_ns"] += ctx.now() - t0
                    incidents["blast_boxes"] += report.blast_radius_boxes

    rig.align()
    t_start = rig.machine.max_time()
    runner = CampaignRunner(rig.machine, kernel=kernel)
    report = runner.run(
        campaign,
        workload=workload,
        steps=5,
        invariants=[boxes_recovered(), survivor_liveness()],
        heal=heal,
    )
    ue_events = rig.machine.faults.log.events(FaultKind.UNCORRECTABLE)
    pages_poisoned = len({ev.addr & ~(PAGE_SIZE - 1) for ev in ue_events})
    repairs = kernel.repair.stats
    return {
        "ues_injected": len(ue_events),
        "pages_poisoned": pages_poisoned,
        "surfaced": incidents["surfaced"],
        "repaired": repairs.repaired,
        "attempted": repairs.attempted,
        "by_source": dict(repairs.by_source),
        "blast_boxes": incidents["blast_boxes"],
        "recovery_us": incidents["recovery_ns"] / 1000,
        "elapsed_us": (rig.machine.max_time() - t_start) / 1000,
        "violations": report.violations,
    }


@pytest.mark.benchmark(group="fault")
def test_self_healing_chaos(benchmark, emit):
    def both():
        return run_self_healing(heal=True), run_self_healing(heal=False)

    healed, baseline = benchmark.pedantic(both, rounds=1, iterations=1)
    table = Table(
        "E6d — self-healing under a chaos campaign (2 UE storms + correlated lines, "
        f"{N_APPS} replicated apps)",
        [
            "pipeline",
            "UEs injected",
            "surfaced to apps",
            "repaired in place",
            "boxes recovered",
            "box-recovery time (us)",
            "campaign time (us)",
        ],
    )
    table.add_row(
        "self-healing ON",
        healed["ues_injected"],
        healed["surfaced"],
        healed["repaired"],
        healed["blast_boxes"],
        healed["recovery_us"],
        healed["elapsed_us"],
    )
    table.add_row(
        "self-healing OFF",
        baseline["ues_injected"],
        baseline["surfaced"],
        baseline["repaired"],
        baseline["blast_boxes"],
        baseline["recovery_us"],
        baseline["elapsed_us"],
    )
    healed_frac = 1 - healed["surfaced"] / max(1, healed["pages_poisoned"])
    emit(
        "E6d_self_healing",
        table.render()
        + f"\nrepair sources used: {healed['by_source']}"
        + f"\n{healed['repaired']} in-place repairs across {healed['pages_poisoned']} poisoned "
        f"pages: {healed_frac:.0%} healed without surfacing; "
        f"blast radius {healed['blast_boxes']} vs {baseline['blast_boxes']} boxes",
    )
    assert not healed["violations"] and not baseline["violations"]
    # >=90% of UEs on replicated/checkpointed pages repaired without
    # surfacing; blast radius must not regress vs the baseline
    assert healed["surfaced"] == 0
    assert healed_frac >= 0.9
    assert baseline["surfaced"] > 0 and baseline["blast_boxes"] > healed["blast_boxes"]
