"""E6 — §3.6 ablation: fault boxes, blast radius, adaptive redundancy.

Three measurements:

1. **Blast radius** — an uncorrectable error hits one app's page; with
   vertical fault boxes exactly one of N apps is recovered, while the
   horizontal baseline (state pooled across apps) must recover all N.
2. **Recovery latency by redundancy mode** — NONE / CHECKPOINT /
   REPLICATE for the same app after a node crash.
3. **Redundancy overhead** — what each mode costs during normal
   operation (the price of the protection).
"""

import pytest

from repro.bench import Table, build_rig
from repro.core.fault import (
    AdaptiveRedundancyPolicy,
    FaultBoxManager,
    FaultRecoveryCoordinator,
    PartialReplicator,
    RedundancyMode,
)
from repro.core.memory import PAGE_SIZE
from repro.flacdk.alloc import FrameAllocator
from repro.rack.faults import FaultEvent, FaultKind

N_APPS = 6
PAGES_PER_APP = 4


def _boxes_rig(criticality=1):
    rig = build_rig()
    manager = rig.kernel.boxes
    boxes = []
    for i in range(N_APPS):
        box = manager.create_box(rig.c0, f"app{i}", criticality=criticality)
        va = box.aspace.mmap(rig.c0, PAGES_PER_APP * PAGE_SIZE)
        for p in range(PAGES_PER_APP):
            box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"app%d:p%d " % (i, p) * 64)
        boxes.append((box, va))
    return rig, manager, boxes


def run_blast_radius():
    rig, manager, boxes = _boxes_rig()
    for box, _ in boxes:
        manager.snapshot(rig.c0, box)
    coordinator = FaultRecoveryCoordinator(manager, AdaptiveRedundancyPolicy())
    victim_box, victim_va = boxes[2]
    frame = victim_box.aspace.page_table.try_translate(rig.c0, victim_va).frame_addr
    rig.align()
    t0 = rig.c0.now()
    event = FaultEvent(FaultKind.UNCORRECTABLE, time_ns=t0, addr=frame + 8)
    report = coordinator.handle_memory_fault(rig.c0, event)
    vertical_ns = rig.c0.now() - t0
    vertical_radius = report.blast_radius_boxes

    # horizontal baseline: state pooled -> every app must be recovered
    t0 = rig.c0.now()
    for box, _ in boxes:
        manager.restore(rig.c0, box)
    horizontal_ns = rig.c0.now() - t0
    return vertical_radius, vertical_ns, N_APPS, horizontal_ns


def run_recovery_modes():
    results = {}
    for criticality, label in ((0, "NONE (restart)"), (1, "CHECKPOINT"), (2, "REPLICATE")):
        rig = build_rig()
        manager = rig.kernel.boxes
        box = manager.create_box(rig.c0, "svc", criticality=criticality)
        va = box.aspace.mmap(rig.c0, PAGES_PER_APP * PAGE_SIZE)
        for p in range(PAGES_PER_APP):
            box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"state%d " % p * 100)
        standby = FrameAllocator(
            rig.kernel.arena.take(1 << 21, align=PAGE_SIZE), 1 << 21
        ).format(rig.c0)
        replicator = PartialReplicator(manager, standby)
        coordinator = FaultRecoveryCoordinator(
            manager, AdaptiveRedundancyPolicy(), replicator=replicator
        )
        # normal-operation protection cost
        rig.align()
        t0 = rig.c0.now()
        if criticality == 1:
            manager.snapshot(rig.c0, box)
        elif criticality == 2:
            replicator.enable(box)
            replicator.sync(rig.c0, box)
        overhead_ns = rig.c0.now() - t0
        # crash the home node, recover on the survivor
        rig.machine.crash_node(0)
        t0 = rig.c1.now()
        report = coordinator.handle_node_crash(rig.c1, dead_node=0)
        recovery_ns = rig.c1.now() - t0
        recovered = report.recoveries[0]
        state_ok = criticality > 0 and box.aspace.read(rig.c1, va, 6) == b"state0"
        results[label] = {
            "mode": recovered.mode,
            "overhead_ns": overhead_ns,
            "recovery_ns": recovery_ns,
            "pages": recovered.pages_restored,
            "state_ok": state_ok,
        }
    return results


@pytest.mark.benchmark(group="fault")
def test_blast_radius(benchmark, emit):
    vertical_radius, vertical_ns, horizontal_radius, horizontal_ns = benchmark.pedantic(
        run_blast_radius, rounds=1, iterations=1
    )
    table = Table(
        "E6a — blast radius of one uncorrectable error (6 apps on the rack)",
        ["isolation", "apps recovered", "recovery time (us)"],
    )
    table.add_row("vertical fault boxes", vertical_radius, vertical_ns / 1000)
    table.add_row("horizontal (pooled state)", horizontal_radius, horizontal_ns / 1000)
    emit(
        "E6a_blast_radius",
        table.render()
        + f"\nfault boxes recover {horizontal_radius / vertical_radius:.0f}x fewer apps, "
        f"{horizontal_ns / vertical_ns:.1f}x faster",
    )
    assert vertical_radius == 1
    assert vertical_ns < horizontal_ns


@pytest.mark.benchmark(group="fault")
def test_recovery_modes(benchmark, emit):
    results = benchmark.pedantic(run_recovery_modes, rounds=1, iterations=1)
    table = Table(
        "E6b — recovery by redundancy mode (node crash, 4-page app)",
        ["mode", "normal-op overhead (us)", "recovery (us)", "pages restored", "state intact"],
    )
    for label, r in results.items():
        table.add_row(
            label, r["overhead_ns"] / 1000, r["recovery_ns"] / 1000, r["pages"], r["state_ok"]
        )
    emit("E6b_recovery_modes", table.render())
    assert results["NONE (restart)"]["pages"] == 0
    assert not results["NONE (restart)"]["state_ok"]
    assert results["CHECKPOINT"]["state_ok"]
    assert results["REPLICATE"]["state_ok"]
    assert results["REPLICATE"]["mode"] is RedundancyMode.REPLICATE
    # protection costs rank: NONE < {CHECKPOINT, REPLICATE}
    assert results["NONE (restart)"]["overhead_ns"] < results["CHECKPOINT"]["overhead_ns"]
    assert results["NONE (restart)"]["overhead_ns"] < results["REPLICATE"]["overhead_ns"]


@pytest.mark.benchmark(group="fault")
def test_incremental_replication_overhead(benchmark, emit):
    """REPLICATE's steady-state cost: only dirtied pages cross at barriers."""
    rig = benchmark.pedantic(build_rig, rounds=1, iterations=1)
    manager = rig.kernel.boxes
    box = manager.create_box(rig.c0, "svc", criticality=2)
    va = box.aspace.mmap(rig.c0, 16 * PAGE_SIZE)
    for p in range(16):
        box.aspace.write(rig.c0, va + p * PAGE_SIZE, b"x" * 64)
    standby = FrameAllocator(rig.kernel.arena.take(1 << 21, align=PAGE_SIZE), 1 << 21).format(rig.c0)
    replicator = PartialReplicator(manager, standby)
    replicator.enable(box)
    t0 = rig.c0.now()
    first = replicator.sync(rig.c0, box)
    full_ns = rig.c0.now() - t0
    box.aspace.write(rig.c0, va, b"touched")
    t0 = rig.c0.now()
    second = replicator.sync(rig.c0, box)
    incr_ns = rig.c0.now() - t0
    emit(
        "E6c_incremental_replication",
        f"full sync: {first} pages in {full_ns / 1000:.1f} us; "
        f"incremental: {second} page(s) in {incr_ns / 1000:.1f} us",
    )
    assert first == 16 and second == 1
    assert incr_ns < full_ns
