"""Attribution-atlas benchmark — blame precision, sketch coverage, overhead.

One seeded two-tenant saturation scenario: a hog (20x the meek tenant's
byte rate) and a meek tenant share one fabric port whose capacity they
jointly exceed.  The bench verifies the observatory's whole value
proposition:

* **blame precision** — the hog owns >= 90% of the saturated-window
  bytes on the bottleneck link (the per-(tenant, link) ledger finds the
  culprit, not just the congestion);
* **sketch coverage** — the top-k hot-page sketch's *guaranteed* floor
  (``sum(count - error) / total``) covers >= 95% of true page traffic;
* **zero simulated ns** — per-node clocks and the report digest are
  bit-identical with attribution fully enabled vs disabled;
* **wall overhead** — the attribution-enabled run costs <= 1.15x wall
  clock;
* **replay** — two same-seed attribution runs produce byte-identical
  atlas snapshots.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_atlas.py            # full run
    PYTHONPATH=src python benchmarks/bench_atlas.py --smoke    # CI gate

A full run writes ``BENCH_atlas.json`` at the repo root (override with
``--json``); smoke runs only write when ``--json`` is given.  All gates
apply in both modes.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List, Optional

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import build_rig
from repro.telemetry.atlas import disable_atlas, enable_atlas
from repro.workloads.traffic import TenantSpec, TrafficEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_atlas.json"

SCHEMA_VERSION = 1

#: CI gates (ISSUE 10 acceptance criteria).
MIN_BLAME_SHARE = 0.90
MIN_PAGE_COVERAGE = 0.95
MAX_WALL_OVERHEAD = 1.15

SEED = 21
LINK_CAPACITY = 200e6  # bytes/s — jointly exceeded by the tenants


def _tenants() -> List[TenantSpec]:
    """The hog offers ~20x the meek tenant's byte rate on the same port."""
    return [
        TenantSpec(name="hog", rate_rps=400_000.0, node=0, value_size=4096,
                   n_keys=32),
        TenantSpec(name="meek", rate_rps=20_000.0, node=0, value_size=1024,
                   n_keys=16),
    ]


def run_once(duration_ns: float, atlas_on: bool, seed: int = SEED) -> dict:
    """One seeded scenario run; returns every observable the gates need."""
    disable_atlas()
    rig = build_rig()
    atlas = enable_atlas(rig.kernel.machine) if atlas_on else None
    engine = TrafficEngine(rig.kernel, _tenants(), seed=seed,
                           batch_window_ns=500_000.0,
                           link_capacity_bytes_per_s=LINK_CAPACITY)
    t0 = time.perf_counter()
    report = engine.run(duration_ns=duration_ns)
    wall = time.perf_counter() - t0
    out = {
        "wall_s": wall,
        "digest": report.digest(),
        "clocks": tuple(n.clock.now_ns for n in rig.machine.nodes.values()),
        "admitted": report.total_admitted,
        "dropped": report.total_dropped,
        "snapshot": None,
    }
    if atlas is not None:
        out["snapshot"] = json.dumps(atlas.snapshot(), sort_keys=True)
        disable_atlas()
    return out


def run(smoke: bool = False) -> dict:
    duration_ns = 20e6 if smoke else 60e6
    repeats = 3

    # wall clock: warm up once (allocator/jit/cache effects dominate the
    # first short run), then best-of-N per configuration so timer noise
    # doesn't masquerade as attribution overhead
    run_once(duration_ns, atlas_on=True)
    offs = [run_once(duration_ns, atlas_on=False) for _ in range(repeats)]
    ons = [run_once(duration_ns, atlas_on=True) for _ in range(repeats)]
    off, on = offs[0], ons[0]
    wall_off = min(r["wall_s"] for r in offs)
    wall_on = min(r["wall_s"] for r in ons)

    snap = json.loads(on["snapshot"])
    links = {r["link"]: r for r in snap["links"]["links"]}
    blame = {r["link"]: r for r in snap["blame"]["links"]}
    bottleneck = max(
        blame, key=lambda link: (blame[link]["saturated_bytes"], link)
    ) if blame else None
    shares = (
        {t["tenant"]: t["share"] for t in blame[bottleneck]["tenants"]}
        if bottleneck else {}
    )

    return {
        "seed": SEED,
        "duration_ns": duration_ns,
        "link_capacity_bytes_per_s": LINK_CAPACITY,
        "admitted": on["admitted"],
        "dropped": on["dropped"],
        "wall_s_off": round(wall_off, 4),
        "wall_s_on": round(wall_on, 4),
        "wall_overhead": round(wall_on / wall_off, 4) if wall_off else 1.0,
        "sim_ns_delta": max(
            abs(a - b) for a, b in zip(off["clocks"], on["clocks"])
        ),
        "digest_off": off["digest"],
        "digest_on": on["digest"],
        "replay_identical": ons[0]["snapshot"] == ons[1]["snapshot"]
        and ons[0]["digest"] == ons[1]["digest"],
        "bottleneck": bottleneck,
        "blame_share_hog": round(shares.get("hog", 0.0), 6),
        "blame_shares": {k: round(v, 6) for k, v in sorted(shares.items())},
        "saturated_windows": (
            links[bottleneck]["saturated_windows"] if bottleneck else 0
        ),
        "page_coverage": snap["sketch"]["page_coverage"],
        "hot_pages_tracked": len(snap["pages"]),
        "queue_delay_ns": snap["queue_delay_ns"],
        "link_utilisation": {
            r["link"]: r["utilisation"] for r in snap["links"]["links"]
        },
    }


def check_gate(report: dict) -> List[str]:
    failures = []
    if report["blame_share_hog"] < MIN_BLAME_SHARE:
        failures.append(
            f"GATE FAIL: hog owns {report['blame_share_hog']:.3f} of the "
            f"bottleneck's saturated bytes (need >= {MIN_BLAME_SHARE})"
        )
    if report["page_coverage"] < MIN_PAGE_COVERAGE:
        failures.append(
            f"GATE FAIL: page sketch guarantees {report['page_coverage']:.3f} "
            f"coverage (need >= {MIN_PAGE_COVERAGE})"
        )
    if report["wall_overhead"] > MAX_WALL_OVERHEAD:
        failures.append(
            f"GATE FAIL: attribution wall overhead {report['wall_overhead']:.3f}x "
            f"(budget {MAX_WALL_OVERHEAD}x)"
        )
    if report["sim_ns_delta"] != 0:
        failures.append(
            f"GATE FAIL: attribution moved simulated time by "
            f"{report['sim_ns_delta']} ns (must be exactly 0)"
        )
    if report["digest_off"] != report["digest_on"]:
        failures.append("GATE FAIL: report digest differs with attribution on")
    if not report["replay_identical"]:
        failures.append("GATE FAIL: same-seed replay not byte-identical")
    return failures


def render(report: dict) -> str:
    lines = [
        "== attribution atlas bench ==",
        f"scenario:        hog+meek on node 0, port capacity "
        f"{report['link_capacity_bytes_per_s'] / 1e6:.0f} MB/s, "
        f"{report['duration_ns'] / 1e6:.0f} ms simulated (seed {report['seed']})",
        f"admitted/dropped: {report['admitted']} / {report['dropped']}",
        f"bottleneck:      {report['bottleneck']} "
        f"({report['saturated_windows']} saturated windows)",
        f"blame shares:    "
        + ", ".join(f"{t}={s:.3f}" for t, s in report["blame_shares"].items()),
        f"page coverage:   {report['page_coverage']:.4f} "
        f"({report['hot_pages_tracked']} pages tracked)",
        f"wall:            off={report['wall_s_off']}s on={report['wall_s_on']}s "
        f"-> {report['wall_overhead']}x (budget {MAX_WALL_OVERHEAD}x)",
        f"sim-ns delta:    {report['sim_ns_delta']} (digest match: "
        f"{report['digest_off'] == report['digest_on']})",
        f"replay:          byte-identical={report['replay_identical']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="short simulated horizon (<60 s wall); the CI gate")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run(smoke=args.smoke)
    report_doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "atlas",
        "mode": mode,
        **report,
        "note": (
            "blame_share_hog is the hog tenant's share of bytes moved during "
            "saturated windows on the bottleneck link; page_coverage is the "
            "Space-Saving sketch's guaranteed lower bound on tracked traffic. "
            "sim_ns_delta compares per-node clocks with attribution on vs off "
            "and must be exactly zero.  Wall numbers are machine-dependent; "
            "compare the overhead ratio, not absolute seconds."
        ),
    }
    print(render(report))

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report_doc, indent=2) + "\n")
        print(f"\nwrote {out}")

    failures = check_gate(report)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
