"""Traffic-engine benchmark — event-driven open loop vs naive polling.

The discrete-event traffic engine (:mod:`repro.workloads.traffic`)
multiplexes 100k open-loop clients over the rack in O(batches) Python;
the architecture it replaced visits every client every tick.  This
bench measures both on identical tenant specs and reports the
wall-clock ratio, plus an open-loop saturation sweep showing admission
control engaging (bounded p99, counted drops) as offered load crosses
the service capacity.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_traffic.py            # full run
    PYTHONPATH=src python benchmarks/bench_traffic.py --smoke    # CI gate

A full run writes ``BENCH_traffic.json`` at the repo root (override
with ``--json``); smoke runs only write when ``--json`` is given.  The
smoke gate requires the engine to clear ``SMOKE_MIN_SPEEDUP``x the
naive driver's throughput (exit 1 otherwise); full runs additionally
check ``FULL_MIN_SPEEDUP``x and that one seeded engine run sustained at
least a million simulated requests.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import build_rig
from repro.workloads.traffic import NaivePollingDriver, TenantSpec, TrafficEngine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_traffic.json"

SCHEMA_VERSION = 1

#: CI smoke gate: the event engine must beat naive per-client polling by
#: at least this factor on throughput (requests per wall second).
SMOKE_MIN_SPEEDUP = 5.0
#: Full-run acceptance: an order of magnitude.
FULL_MIN_SPEEDUP = 10.0


def _tenants(n_clients_total: int) -> List[TenantSpec]:
    """The shared fleet: four tenants, mixed shapes, two nodes."""
    per = n_clients_total // 4
    return [
        TenantSpec(name="web", rate_rps=600_000.0, n_clients=per, node=0,
                   get_ratio=0.9),
        TenantSpec(name="api", rate_rps=400_000.0, n_clients=per, node=1,
                   get_ratio=0.7),
        TenantSpec(name="feed", rate_rps=300_000.0, n_clients=per, node=0,
                   arrival="diurnal", amplitude=0.6, period_s=0.2),
        TenantSpec(name="batch", rate_rps=200_000.0, n_clients=per, node=1,
                   get_ratio=0.5),
    ]


def bench_engine(n_clients: int, n_requests: int, seed: int = 0) -> Dict[str, float]:
    """One seeded engine run to ``n_requests`` offered requests."""
    rig = build_rig()
    engine = TrafficEngine(rig.kernel, _tenants(n_clients), seed=seed,
                           batch_window_ns=1e6)
    t0 = time.perf_counter()
    report = engine.run(max_requests=n_requests)
    wall = time.perf_counter() - t0
    return {
        "clients": n_clients,
        "requests": report.total_requests,
        "admitted": report.total_admitted,
        "dropped": report.total_dropped,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(report.total_requests / wall, 1) if wall else float("inf"),
        "sim_duration_ns": round(report.duration_ns, 3),
        "events_dispatched": report.events_dispatched,
        "digest": report.digest(),
    }


def bench_naive(n_clients: int, n_ticks: int, seed: int = 0) -> Dict[str, float]:
    """A short slice of the polling architecture on the same tenants.

    A full million requests under naive polling would take hours, so the
    baseline is measured on a bounded slice and reported as ops per wall
    second — the honest per-request rate of the polled design, already
    generously short on idle ticks.
    """
    rig = build_rig()
    driver = NaivePollingDriver(rig.kernel, _tenants(n_clients), seed=seed,
                                tick_ns=1e6)
    t0 = time.perf_counter()
    served = driver.run_ticks(n_ticks)
    wall = time.perf_counter() - t0
    return {
        "clients": n_clients,
        "ticks": n_ticks,
        "requests": served,
        "wall_s": round(wall, 4),
        "ops_per_sec": round(served / wall, 1) if wall and served else 0.0,
    }


def saturation_sweep(multipliers: List[float], n_requests: int,
                     seed: int = 0) -> List[dict]:
    """Open-loop sweep: offered rate as a multiple of service capacity.

    Capacity is measured first (one probe run reports the engine's
    per-request charged cost); each sweep point then offers
    ``multiplier x capacity`` with a fixed 100 us backlog bound.  Past
    saturation the drop rate climbs while survivor p99 stays bounded —
    the admission-control signature.
    """
    probe_rig = build_rig()
    probe = TrafficEngine(
        probe_rig.kernel,
        [TenantSpec(name="probe", rate_rps=100_000.0, node=0)],
        seed=seed, batch_window_ns=1e6,
    )
    probe.run(max_requests=20_000)
    svc_ns = probe.tenants["probe"].svc_est_ns
    capacity_rps = 1e9 / svc_ns
    bound_ns = 100_000.0
    rows = []
    for mult in multipliers:
        rig = build_rig()
        engine = TrafficEngine(
            rig.kernel,
            [TenantSpec(name="sweep", rate_rps=mult * capacity_rps, node=0,
                        max_backlog_ns=bound_ns)],
            seed=seed, batch_window_ns=500_000.0,
        )
        rep = engine.run(max_requests=n_requests)
        t = rep.tenants["sweep"]
        rows.append({
            "offered_over_capacity": mult,
            "offered_rps": round(mult * capacity_rps, 1),
            "offered": t["offered"],
            "admitted": t["admitted"],
            "dropped": t["dropped"],
            "drop_pct": round(100.0 * t["dropped"] / t["offered"], 2) if t["offered"] else 0.0,
            "p50_ns": round(t["p50_ns"], 1),
            "p99_ns": round(t["p99_ns"], 1),
            "p99_bounded": t["p99_ns"] <= bound_ns + 10 * svc_ns,
        })
    return {
        "service_ns_per_request": round(svc_ns, 1),
        "capacity_rps": round(capacity_rps, 1),
        "backlog_bound_ns": bound_ns,
        "rows": rows,
    }


def run(smoke: bool = False) -> dict:
    if smoke:
        n_clients, n_requests, n_ticks = 10_000, 50_000, 8
        multipliers = [0.5, 2.0]
        sweep_requests = 20_000
    else:
        n_clients, n_requests, n_ticks = 100_000, 1_000_000, 4
        multipliers = [0.5, 0.9, 1.2, 2.0, 4.0]
        sweep_requests = 100_000
    engine = bench_engine(n_clients, n_requests)
    repeat = bench_engine(n_clients, min(n_requests, 100_000))
    check = bench_engine(n_clients, min(n_requests, 100_000))
    naive = bench_naive(n_clients, n_ticks)
    ratio = (
        round(engine["ops_per_sec"] / naive["ops_per_sec"], 1)
        if naive["ops_per_sec"]
        else float("inf")
    )
    return {
        "engine": engine,
        "engine_determinism": {
            "digests_match": repeat["digest"] == check["digest"],
            "digest": repeat["digest"],
        },
        "naive_polling": naive,
        "speedup_vs_naive": ratio,
        "saturation_sweep": saturation_sweep(multipliers, sweep_requests),
    }


def check_gate(report: dict, smoke: bool) -> List[str]:
    failures = []
    need = SMOKE_MIN_SPEEDUP if smoke else FULL_MIN_SPEEDUP
    ratio = report["speedup_vs_naive"]
    if ratio < need:
        failures.append(
            f"gate: engine is only {ratio:.1f}x naive polling (need >= {need:.0f}x)"
        )
    if not report["engine_determinism"]["digests_match"]:
        failures.append("gate: two same-seed engine runs produced different digests")
    if not smoke and report["engine"]["requests"] < 1_000_000:
        failures.append(
            f"gate: full run offered only {report['engine']['requests']} requests "
            "(need >= 1,000,000)"
        )
    saturated = [r for r in report["saturation_sweep"]["rows"]
                 if r["offered_over_capacity"] > 1.0]
    if saturated and not any(r["dropped"] > 0 for r in saturated):
        failures.append("gate: admission never engaged past saturation")
    if any(not r["p99_bounded"] for r in report["saturation_sweep"]["rows"]):
        failures.append("gate: survivor p99 exceeded the backlog bound")
    return failures


def render(report: dict) -> str:
    e, n = report["engine"], report["naive_polling"]
    lines = [
        "== traffic engine vs naive polling ==",
        f"engine : {e['requests']:>9,} requests  {e['wall_s']:>8.2f}s  "
        f"{e['ops_per_sec']:>12,.0f} req/s  ({e['clients']:,} clients, "
        f"{e['events_dispatched']:,} events, {e['sim_duration_ns']/1e6:,.1f} sim-ms)",
        f"naive  : {n['requests']:>9,} requests  {n['wall_s']:>8.2f}s  "
        f"{n['ops_per_sec']:>12,.0f} req/s  ({n['clients']:,} clients, "
        f"{n['ticks']} ticks)",
        f"speedup: {report['speedup_vs_naive']}x",
        "",
        "== open-loop saturation sweep ==",
        f"capacity {report['saturation_sweep']['capacity_rps']:,.0f} req/s "
        f"({report['saturation_sweep']['service_ns_per_request']} ns/req), "
        f"backlog bound {report['saturation_sweep']['backlog_bound_ns']/1e3:.0f} us",
        f"{'offered/cap':>11}  {'offered':>8}  {'dropped':>8}  {'drop%':>6}  "
        f"{'p50(ns)':>9}  {'p99(ns)':>9}",
    ]
    for r in report["saturation_sweep"]["rows"]:
        lines.append(
            f"{r['offered_over_capacity']:>11.1f}  {r['offered']:>8,}  "
            f"{r['dropped']:>8,}  {r['drop_pct']:>6.2f}  {r['p50_ns']:>9,.0f}  "
            f"{r['p99_ns']:>9,.0f}"
        )
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="small fleet and short runs (<60 s); the CI gate")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run(smoke=args.smoke)
    report_doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "traffic",
        "mode": mode,
        **report,
        "note": (
            "speedup_vs_naive compares requests per wall second of the "
            "discrete-event open-loop engine against the per-client polling "
            "architecture it replaced, on identical tenant specs (the naive "
            "baseline is measured on a bounded slice).  The saturation sweep "
            "offers multiples of the measured service capacity with a fixed "
            "backlog bound: drops engage past 1.0x while survivor p99 stays "
            "bounded.  Compare ratios, not absolute rates, across machines."
        ),
    }
    print(render(report))

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report_doc, indent=2) + "\n")
        print(f"\nwrote {out}")

    failures = check_gate(report, smoke=args.smoke)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
