"""E14 — §2.2: hops and switches raise both latency and fault surface.

The paper's double-edged observation about the fabric: every hop and
switch between a node and global memory (a) adds access latency and
(b) widens the fault surface.  This bench quantifies both on the three
built-in topologies — direct-attached, single switch, and two-tier —
using the same Redis workload for latency and the same seeded access
pattern for fault counts.
"""

import statistics

import pytest

from repro.apps.redis import connect_over_flacos
from repro.bench import Table, build_rig
from repro.rack import FaultModel, RackConfig, RackMachine

TOPOLOGIES = ("dual_direct", "single_switch", "two_tier")


def run_latency(topology: str) -> float:
    rig = build_rig(n_nodes=2, topology=topology)
    client, _ = connect_over_flacos(rig.kernel.ipc, rig.c0, rig.c1)
    rig.align()
    latencies = []
    for i in range(60):
        _, ns = client.timed_request(b"SET", b"k%d" % i, b"v" * 64)
        latencies.append(ns)
    return statistics.mean(latencies)


def run_fault_surface(topology: str) -> int:
    machine = RackMachine(
        RackConfig(
            n_nodes=2,
            topology=topology,
            faults=FaultModel(global_ce_rate=0.002, per_hop_multiplier=2.0),
            seed=31,
        )
    )
    for i in range(2000):
        machine.load(0, machine.global_base + (i * 64) % 65536, 8, bypass_cache=True)
    return len(machine.faults.log)


def run_all():
    return {
        topology: (run_latency(topology), run_fault_surface(topology))
        for topology in TOPOLOGIES
    }


@pytest.mark.benchmark(group="topology")
def test_topology_sensitivity(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E14 — fabric topology: latency AND fault surface (§2.2)",
        ["topology", "path", "Redis SET (us)", "CEs per 2000 accesses"],
    )
    paths = {
        "dual_direct": "1 hop, 0 switches",
        "single_switch": "2 hops, 1 switch",
        "two_tier": "3 hops, 2 switches",
    }
    for topology, (latency_ns, faults) in results.items():
        table.add_row(topology, paths[topology], latency_ns / 1000, faults)
    direct_lat, direct_faults = results["dual_direct"]
    deep_lat, deep_faults = results["two_tier"]
    emit(
        "E14_topology",
        table.render()
        + f"\ntwo switch levels cost {deep_lat / direct_lat:.2f}x the latency and "
        f"{deep_faults / max(1, direct_faults):.1f}x the correctable-error rate — "
        f"the paper's fault-surface argument, quantified",
    )
    # latency strictly increases with path depth
    lats = [results[t][0] for t in TOPOLOGIES]
    assert lats[0] < lats[1] < lats[2]
    # and so does the fault surface
    faults = [results[t][1] for t in TOPOLOGIES]
    assert faults[0] < faults[2]
