"""Resilience benchmark — availability under a seeded crash storm.

Drives the fault-tolerant request path (:mod:`repro.workloads.resilience`)
through a :class:`ChaosUnderLoad` campaign — link flaps and a node crash
interleaved with open-loop multi-tenant traffic on one event heap — and
measures availability with the resilience spec on (deadlines, retries,
hedging, breakers, failover) versus off (faults become counted losses).

Run standalone::

    PYTHONPATH=src python benchmarks/bench_resilience.py            # full run
    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke    # CI gate

A full run writes ``BENCH_resilience.json`` at the repo root (override
with ``--json``); smoke runs only write when ``--json`` is given.  The
gate (both modes) requires: two same-seed chaos runs byte-identical
journal-for-journal; resilience-on availability at or above
``MIN_AVAILABILITY_ON``; and resilience-off showing measurable loss
below the on-path (exit 1 otherwise).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Dict, List

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.bench.harness import build_rig
from repro.chaos.schedule import ChaosCampaign, event
from repro.workloads import TenantSpec
from repro.workloads.resilience import (
    DISABLED,
    ChaosUnderLoad,
    ResilientTrafficEngine,
    default_spec,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_resilience.json"

SCHEMA_VERSION = 1

#: Gate: with the full resilience spec, availability under the crash
#: storm must not dip below this.
MIN_AVAILABILITY_ON = 0.99


def _tenants() -> List[TenantSpec]:
    return [
        TenantSpec(name="web", rate_rps=200_000.0, node=0, n_keys=256,
                   get_ratio=0.9, max_backlog_ns=5e6),
        TenantSpec(name="api", rate_rps=150_000.0, node=0, n_keys=256,
                   get_ratio=0.7, max_backlog_ns=5e6),
        TenantSpec(name="batch", rate_rps=100_000.0, node=0, n_keys=256,
                   get_ratio=0.5, max_backlog_ns=5e6),
    ]


def _campaign(seed: int) -> ChaosCampaign:
    """Flap the primary's fabric port, then crash it outright; the
    replica (node 1) keeps a live path throughout."""
    return ChaosCampaign(
        name="crash-storm",
        seed=seed,
        events=(
            event("link_down", at_ns=1e6, node=0),
            event("link_up", at_ns=3e6, node=0),
            event("ce_storm", at_ns=3.5e6, node=0, count=32),
            event("node_crash", at_ns=4e6, node=0),
            event("node_restart", at_ns=60e6),
        ),
    )


def bench_chaos(spec, n_requests: int, seed: int = 7) -> Dict[str, object]:
    """One seeded chaos-under-load run; returns outcome + journal digest."""
    rig = build_rig(n_nodes=2)
    engine = ResilientTrafficEngine(rig.kernel, _tenants(), resilience=spec,
                                    seed=seed)
    cul = ChaosUnderLoad(rig.kernel, engine, _campaign(seed))
    t0 = time.perf_counter()
    rep = cul.run(max_requests=n_requests)
    wall = time.perf_counter() - t0
    t = rep.traffic
    retries = sum(x["retries"] for x in t.tenants.values())
    hedges = sum(x["hedges"] for x in t.tenants.values())
    hedge_wins = sum(x["hedge_wins"] for x in t.tenants.values())
    failovers = sum(x["failovers"] for x in t.tenants.values())
    timed_out = sum(x["timed_out"] for x in t.tenants.values())
    return {
        "requests": t.total_requests,
        "admitted": t.total_admitted,
        "dropped": t.total_dropped,
        "failed": t.total_failed,
        "timed_out": timed_out,
        "retries": retries,
        "hedges": hedges,
        "hedge_wins": hedge_wins,
        "failovers": failovers,
        "breaker_transitions": len(rep.breaker_transitions),
        "chaos_events_fired": len(rep.fired),
        "availability": round(t.availability, 6),
        "wall_s": round(wall, 4),
        "sim_duration_ns": round(t.duration_ns, 3),
        "digest": rep.digest,
        "traffic_digest": t.digest(),
    }


def run(smoke: bool = False) -> dict:
    n_requests = 30_000 if smoke else 200_000
    on = bench_chaos(default_spec(replica_node=1), n_requests)
    replay = bench_chaos(default_spec(replica_node=1), n_requests)
    off = bench_chaos(DISABLED, n_requests)
    return {
        "resilience_on": on,
        "resilience_off": off,
        "determinism": {
            "journals_match": on["digest"] == replay["digest"],
            "traffic_digests_match": on["traffic_digest"] == replay["traffic_digest"],
            "digest": on["digest"],
        },
        "availability_gain": round(on["availability"] - off["availability"], 6),
    }


def check_gate(report: dict, smoke: bool) -> List[str]:
    failures = []
    det = report["determinism"]
    if not (det["journals_match"] and det["traffic_digests_match"]):
        failures.append(
            "gate: two same-seed chaos-under-load runs were not byte-identical"
        )
    on, off = report["resilience_on"], report["resilience_off"]
    if on["availability"] < MIN_AVAILABILITY_ON:
        failures.append(
            f"gate: resilience-on availability {on['availability']:.4f} "
            f"(need >= {MIN_AVAILABILITY_ON})"
        )
    if off["availability"] >= on["availability"]:
        failures.append(
            "gate: resilience-off shows no measurable loss versus on "
            f"({off['availability']:.4f} >= {on['availability']:.4f})"
        )
    if off["failed"] <= 0:
        failures.append("gate: the crash storm failed zero requests with "
                        "resilience off — campaign too gentle")
    if on["failovers"] <= 0:
        failures.append("gate: resilience-on never failed over to the replica")
    return failures


def render(report: dict) -> str:
    on, off = report["resilience_on"], report["resilience_off"]
    lines = [
        "== availability under crash storm ==",
        f"{'':>10}  {'offered':>8}  {'failed':>7}  {'availability':>12}  "
        f"{'failovers':>9}  {'retries':>7}  {'hedges':>6}  {'wall_s':>7}",
        f"{'on':>10}  {on['requests']:>8,}  {on['failed']:>7,}  "
        f"{on['availability']:>12.4f}  {on['failovers']:>9,}  "
        f"{on['retries']:>7,}  {on['hedges']:>6,}  {on['wall_s']:>7.2f}",
        f"{'off':>10}  {off['requests']:>8,}  {off['failed']:>7,}  "
        f"{off['availability']:>12.4f}  {off['failovers']:>9,}  "
        f"{off['retries']:>7,}  {off['hedges']:>6,}  {off['wall_s']:>7.2f}",
        f"availability gain: {report['availability_gain']:+.4f}",
        f"breaker transitions (on): {on['breaker_transitions']}, "
        f"chaos events fired: {on['chaos_events_fired']}",
        f"replay byte-identical: {report['determinism']['journals_match']}",
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="short runs (<60 s); the CI gate")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    report = run(smoke=args.smoke)
    report_doc = {
        "schema_version": SCHEMA_VERSION,
        "bench": "resilience",
        "mode": mode,
        **report,
        "note": (
            "Both rows drive the same seeded crash storm (link flap + CE "
            "storm + node crash on the primary) against the same open-loop "
            "tenants.  'on' enables the full fault-tolerant request path "
            "(deadlines, budgeted retries, tail hedging, circuit breakers "
            "with failover to the replica node); 'off' serves the identical "
            "arrival process with faults counted as losses.  Availability is "
            "admitted / (admitted + failed); admission drops are policy, not "
            "failures.  Journals are byte-identical per seed."
        ),
    }
    print(render(report))

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report_doc, indent=2) + "\n")
        print(f"\nwrote {out}")

    failures = check_gate(report, smoke=args.smoke)
    for failure in failures:
        print(failure, file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
