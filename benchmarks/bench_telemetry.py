"""Telemetry overhead microbenchmark — instrumented vs uninstrumented.

The observability layer's contract (DESIGN.md §8): with telemetry
disabled every instrumentation site costs one attribute check, and with
it enabled the *simulated* nanoseconds charged are bit-identical — only
host CPU time may grow.  This bench quantifies both halves on the same
substrate workloads the data-plane bench uses (hot cached loads/stores
and the 90/10 mix), running each body twice: telemetry off, then
telemetry on with counters live.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_telemetry.py            # full run
    PYTHONPATH=src python benchmarks/bench_telemetry.py --smoke    # <5 s sanity run

A full run writes ``BENCH_telemetry.json`` at the repo root via the
harness's ``emit_bench_metrics`` hook (override with ``--json``); the
file carries per-workload ops/sec for both modes, the overhead ratio,
and the telemetry registry snapshot of the instrumented run.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Callable, Dict

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry
from repro.bench.harness import emit_bench_metrics
from repro.rack import RackConfig, RackMachine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

_LINE = 64
_HOT_LINES = 256


def _fresh(smoke: bool) -> RackMachine:
    kw = {}
    if smoke:
        kw.update(global_mem_size=1 << 22, local_mem_size=1 << 20)
    return RackMachine(RackConfig(n_nodes=2, **kw))


def _setup_load_hot(smoke: bool) -> Callable[[int], None]:
    m = _fresh(smoke)
    g = m.global_base
    for i in range(_HOT_LINES):
        m.load(0, g + i * _LINE, 8)
    mask = _HOT_LINES - 1
    return lambda i: m.load(0, g + (i & mask) * _LINE, 8)


def _setup_store_hot(smoke: bool) -> Callable[[int], None]:
    m = _fresh(smoke)
    g = m.global_base
    for i in range(_HOT_LINES):
        m.load(0, g + i * _LINE, 8)
    mask = _HOT_LINES - 1
    payload = b"\xa5" * 8
    return lambda i: m.store(0, g + (i & mask) * _LINE, payload)


def _setup_mixed(smoke: bool) -> Callable[[int], None]:
    m = _fresh(smoke)
    g = m.global_base
    for i in range(_HOT_LINES):
        m.load(0, g + i * _LINE, 8)
    mask = _HOT_LINES - 1
    payload = b"\x7e" * 8

    def body(i):
        addr = g + (i & mask) * _LINE
        if i % 10 == 9:
            m.store(0, addr, payload)
        else:
            m.load(0, addr, 8)

    return body


WORKLOADS = {
    "cached_load_hot": (_setup_load_hot, 200_000),
    "cached_store_hot": (_setup_store_hot, 200_000),
    "mixed_90_10": (_setup_mixed, 200_000),
}


def _time_body(setup, ops: int, smoke: bool, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds for ``ops`` iterations."""
    best = float("inf")
    for _ in range(repeats):
        body = setup(smoke)
        t0 = time.perf_counter()
        for i in range(ops):
            body(i)
        best = min(best, time.perf_counter() - t0)
    return best


def run(smoke: bool = False) -> Dict[str, Dict[str, float]]:
    scale = 20 if smoke else 1
    repeats = 1 if smoke else 3
    results: Dict[str, Dict[str, float]] = {}
    for name, (setup, full_ops) in WORKLOADS.items():
        ops = full_ops // scale
        telemetry.disable()
        wall_off = _time_body(setup, ops, smoke, repeats)
        telemetry.reset()
        telemetry.enable()  # counters on, tracing off: the hot-path mode
        wall_on = _time_body(setup, ops, smoke, repeats)
        telemetry.disable()
        results[name] = {
            "ops": ops,
            "ops_per_sec_off": round(ops / wall_off, 1),
            "ops_per_sec_on": round(ops / wall_on, 1),
            "overhead_ratio": round(wall_on / wall_off, 3),
        }
    return results


def render(results: Dict[str, Dict[str, float]]) -> str:
    rows = [f"{'workload':<20} {'ops':>8} {'off ops/s':>12} {'on ops/s':>12} {'overhead':>9}"]
    for name, m in results.items():
        rows.append(
            f"{name:<20} {m['ops']:>8} {m['ops_per_sec_off']:>12,.0f} "
            f"{m['ops_per_sec_on']:>12,.0f} {m['overhead_ratio']:>8.2f}x"
        )
    return "\n".join(rows)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny op counts (<5 s); for CI sanity, not measurement")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="output path (default BENCH_telemetry.json at repo root; "
                         "smoke runs skip writing unless set)")
    args = ap.parse_args(argv)

    results = run(smoke=args.smoke)
    print(render(results))

    if args.json is not None or not args.smoke:
        # Re-run one instrumented workload so the emitted snapshot shows
        # real counters (run() leaves telemetry disabled).
        telemetry.reset()
        telemetry.enable()
        body = _setup_mixed(args.smoke)
        for i in range(20_000 // (20 if args.smoke else 1)):
            body(i)
        out = emit_bench_metrics(
            "telemetry",
            {"mode": "smoke" if args.smoke else "full", "workloads": results},
            path=args.json,
        )
        telemetry.disable()
        telemetry.reset()
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
