"""E2 — §4.2 container startup: cold vs FlacOS shared-cache vs hot.

Node 1 cold-starts the 4 GB PyTorch image (registry pull); node 2 then
starts the same image from the rack-shared page cache; a repeat start
on a warmed node is hot.  Paper: 21.067 s / 5.526 s / 3.02 s — a 3.8x
improvement from sharing, with hot < FlacOS because the shared path
still downloads the manifest.
"""

import pytest

from repro.apps.containers import ContainerRuntime, Registry, pytorch_image
from repro.bench import Table, build_rig, check_ratio
from repro.rack import rendezvous

PAPER = {"cold": 21.067, "flacos-shared": 5.526, "hot": 3.02}
PAPER_IMPROVEMENT = 21.067 / 5.526  # 3.81x


def run_startup_experiment():
    rig = build_rig()
    registry = Registry()
    registry.push(pytorch_image())
    runtime = ContainerRuntime(rig.kernel.fs, registry)
    cold = runtime.start(rig.c0, "pytorch:2.1")
    # node 2 begins after node 1 finished (wall-clock ordering of the paper)
    rendezvous(rig.c0.node.clock, rig.c1.node.clock)
    t0 = rig.c1.now()
    shared = runtime.start(rig.c1, "pytorch:2.1")
    shared_elapsed_s = (rig.c1.now() - t0) / 1e9
    hot = runtime.start(rig.c1, "pytorch:2.1")
    return cold, shared, shared_elapsed_s, hot


@pytest.mark.benchmark(group="container-startup")
def test_container_startup(benchmark, emit):
    cold, shared, shared_s, hot = benchmark.pedantic(
        run_startup_experiment, rounds=1, iterations=1
    )
    table = Table(
        "§4.2 container startup — 4 GB PyTorch image",
        ["path", "measured (s)", "paper (s)", "manifest (s)", "pull (s)",
         "cache read (s)", "unpack (s)", "runtime init (s)"],
    )
    table.add_row(
        "cold (registry)", f"{cold.total_s:.3f}", PAPER["cold"],
        f"{cold.manifest_ns / 1e9:.3f}", f"{cold.pull_ns / 1e9:.3f}",
        "-", f"{cold.unpack_ns / 1e9:.3f}", f"{cold.runtime_init_ns / 1e9:.3f}",
    )
    table.add_row(
        "FlacOS (shared page cache)", f"{shared_s:.3f}", PAPER["flacos-shared"],
        f"{shared.manifest_ns / 1e9:.3f}", "-",
        f"{shared.image_read_ns / 1e9:.3f}", "-", f"{shared.runtime_init_ns / 1e9:.3f}",
    )
    table.add_row(
        "hot (local, warm)", f"{hot.total_s:.3f}", PAPER["hot"],
        "-", "-", "-", "-", f"{hot.runtime_init_ns / 1e9:.3f}",
    )
    improvement = cold.total_s / shared_s
    ok, message = check_ratio(
        "startup improvement", improvement, PAPER_IMPROVEMENT, PAPER_IMPROVEMENT
    )
    ordering = (
        f"ordering: cold ({cold.total_s:.2f}s) > FlacOS ({shared_s:.2f}s) "
        f"> hot ({hot.total_s:.2f}s) — hot wins because FlacOS still fetches the manifest"
    )
    emit("E2_container_startup", table.render() + "\n" + message + "\n" + ordering)
    assert cold.total_s > shared_s > hot.total_s
    assert shared.pull_ns == 0, "FlacOS path must not touch the registry for layers"
    assert shared.shared_cache_hits > 0
    assert ok, message


@pytest.mark.benchmark(group="container-startup")
def test_container_startup_on_pmem_platform(benchmark, emit):
    """The paper's *simulated platform*: VMs sharing persistent memory.

    Same experiment on a rack whose global pool is PMEM — the ordering
    and the improvement band must hold on the slower, persistent medium
    too (as the paper's own VM platform showed).
    """
    from repro.core.kernel import FlacOS
    from repro.rack import RackConfig, RackMachine

    def run():
        machine = RackMachine(
            RackConfig(n_nodes=2, global_mem_size=1 << 26, global_kind="pmem")
        )
        kernel = FlacOS.boot(machine)
        c0, c1 = machine.context(0), machine.context(1)
        registry = Registry()
        registry.push(pytorch_image())
        runtime = ContainerRuntime(kernel.fs, registry)
        cold = runtime.start(c0, "pytorch:2.1")
        rendezvous(c0.node.clock, c1.node.clock)
        t0 = c1.now()
        shared = runtime.start(c1, "pytorch:2.1")
        shared_s = (c1.now() - t0) / 1e9
        hot = runtime.start(c1, "pytorch:2.1")
        return cold, shared_s, hot

    cold, shared_s, hot = benchmark.pedantic(run, rounds=1, iterations=1)
    improvement = cold.total_s / shared_s
    emit(
        "E2b_container_startup_pmem",
        f"PMEM simulated platform: cold {cold.total_s:.3f}s > FlacOS {shared_s:.3f}s "
        f"> hot {hot.total_s:.3f}s; improvement {improvement:.2f}x "
        f"(paper's VM platform: 3.81x)",
    )
    assert cold.total_s > shared_s > hot.total_s
    assert 2.0 < improvement < 6.0
