"""Substrate microbenchmark — raw throughput of the rack data plane.

Every layer of the reproduction funnels through
:meth:`repro.rack.RackMachine.load` / :meth:`~repro.rack.RackMachine.store`
/ the atomics, so the *Python* cost of those calls bounds how fast
everything above them can run.  This bench measures that cost directly:
ops/sec and wall-clock ns/op for the canonical access shapes
(cached single-line load/store, bypass bulk transfers, atomics, flush,
and a 90/10 mixed workload), plus the *simulated* nanoseconds each
workload charged — which the data-plane fast path must keep bit-identical.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_substrate.py            # full run
    PYTHONPATH=src python benchmarks/bench_substrate.py --smoke    # <5 s sanity run

A full run writes ``BENCH_substrate.json`` at the repo root (override with
``--json``); smoke runs only write when ``--json`` is given explicitly.
The JSON carries a recorded pre-optimization baseline (``baseline``) so
later PRs have a perf trajectory to regress against; ``speedup_vs_baseline``
is ops/sec relative to that seed measurement.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, Optional

import numpy as np

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.rack import RackConfig, RackMachine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_substrate.json"

SCHEMA_VERSION = 1

#: Pre-optimization throughput, measured at the seed commit (PR 1, before the
#: data-plane fast path landed) with the *same* workload bodies and full-run
#: op counts on the reference container.  Absolute numbers are machine
#: dependent; the ratio after/before on one machine is what matters.
BASELINE_OPS_PER_SEC: Dict[str, float] = {
    "cached_load_hot": 320181.4,
    "cached_store_hot": 303571.6,
    "cached_load_miss": 112859.1,
    "bypass_load_4k": 181695.2,
    "bypass_store_4k": 9907.1,
    "atomic_fetch_add": 193410.2,
    "flush_line": 87567.7,
    "mixed_90_10": 307905.8,
    # bulk rows: the loop-of-single-ops equivalent of each batch body,
    # measured just before the batched data plane landed (ISSUE 6) — the
    # "pre-batching" trajectory point for the same logical work
    "bulk_load_1k": 438148.2,
    "bulk_store_1k": 489316.5,
    "scatter_gather_64": 468520.7,
    "batched_fetch_add": 239890.6,
    "cached_bulk_load_1k": 803640.8,
}


def _bench(name: str, ops: int, setup: Callable[[], Callable[[int], None]],
           machine_holder: list, repeats: int = 3, unit: int = 1) -> Dict[str, float]:
    """Best-of-``repeats`` timing of ``ops`` iterations of ``setup()``'s body.

    Each repeat rebuilds the machine from scratch (``setup`` appends it to
    ``machine_holder``), so the simulated time charged is deterministic and
    identical across repeats; the best wall time damps scheduler noise.

    ``unit`` is the number of logical data-plane operations one body call
    performs (a bulk body issuing a 1024-address batch has ``unit=1024``),
    so ops/sec and ns/op stay comparable with the single-op rows.
    """
    best_wall = float("inf")
    sim_charged = 0.0
    for _ in range(repeats):
        body = setup()
        machine = machine_holder[-1]
        sim_before = machine.max_time()
        t0 = time.perf_counter()
        for i in range(ops):
            body(i)
        wall = time.perf_counter() - t0
        sim_charged = machine.max_time() - sim_before
        best_wall = min(best_wall, wall)
    wall = best_wall
    total = ops * unit
    return {
        "ops": total,
        "wall_s": round(wall, 6),
        "ops_per_sec": round(total / wall, 1) if wall > 0 else float("inf"),
        "ns_per_op": round(wall * 1e9 / total, 1) if total else 0.0,
        "sim_ns_charged": round(sim_charged, 3),
    }


def run(smoke: bool = False) -> Dict[str, Dict[str, float]]:
    """Run every workload; returns {workload: metrics}."""
    scale = 1 if not smoke else 20  # smoke = 1/20th the ops, <5 s total
    repeats = 3 if not smoke else 1
    results: Dict[str, Dict[str, float]] = {}
    holder: list = []

    line = 64
    hot_lines = 256  # fits comfortably in the 4096-line cache

    def _bench_s(name, ops, setup, unit=1):
        return _bench(name, max(1, ops), setup, holder, repeats=repeats, unit=unit)

    def fresh(**kw) -> RackMachine:
        if smoke:  # small devices: machine build is dominated by zeroing
            kw.setdefault("global_mem_size", 1 << 22)
            kw.setdefault("local_mem_size", 1 << 20)
        m = RackMachine(RackConfig(n_nodes=2, **kw))
        holder.append(m)
        return m

    # -- cached single-line load, hot set (the fast-path target) -----------
    def setup_load_hot():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):  # warm the cache
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        return lambda i: m.load(0, g + (i & mask) * line, 8)

    results["cached_load_hot"] = _bench_s("cached_load_hot", 200_000 // scale, setup_load_hot)

    # -- cached single-line store, hot set ---------------------------------
    def setup_store_hot():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        payload = b"\xa5" * 8
        return lambda i: m.store(0, g + (i & mask) * line, payload)

    results["cached_store_hot"] = _bench_s("cached_store_hot", 200_000 // scale, setup_store_hot)

    # -- cached load with misses + evictions (streaming) -------------------
    def setup_load_miss():
        m = fresh()
        g = m.global_base
        n_lines = m.global_size // line
        return lambda i: m.load(0, g + (i % n_lines) * line, line)

    results["cached_load_miss"] = _bench_s("cached_load_miss", 40_000 // scale, setup_load_miss)

    # -- bypass (non-temporal) bulk transfers ------------------------------
    def setup_bypass_load():
        m = fresh()
        g = m.global_base
        n_slots = m.global_size // 4096
        return lambda i: m.load(0, g + (i % n_slots) * 4096, 4096, bypass_cache=True)

    results["bypass_load_4k"] = _bench_s("bypass_load_4k", 40_000 // scale, setup_bypass_load)

    def setup_bypass_store():
        m = fresh()
        g = m.global_base
        n_slots = m.global_size // 4096
        payload = b"\x5a" * 4096
        return lambda i: m.store(0, g + (i % n_slots) * 4096, payload, bypass_cache=True)

    results["bypass_store_4k"] = _bench_s("bypass_store_4k", 40_000 // scale, setup_bypass_store)

    # -- rack-serialised atomics -------------------------------------------
    def setup_atomics():
        m = fresh()
        g = m.global_base
        return lambda i: m.atomic_fetch_add(0, g, 1)

    results["atomic_fetch_add"] = _bench_s("atomic_fetch_add", 60_000 // scale, setup_atomics)

    # -- store + flush round trip ------------------------------------------
    def setup_flush():
        m = fresh()
        g = m.global_base
        payload = b"\x3c" * 8
        mask = hot_lines - 1

        def body(i):
            addr = g + (i & mask) * line
            m.store(0, addr, payload)
            m.flush(0, addr, 8)

        return body

    results["flush_line"] = _bench_s("flush_line", 40_000 // scale, setup_flush)

    # -- 90/10 read/write mix over a hot set -------------------------------
    def setup_mixed():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        payload = b"\x7e" * 8

        def body(i):
            addr = g + (i & mask) * line
            if i % 10 == 9:
                m.store(0, addr, payload)
            else:
                m.load(0, addr, 8)

        return body

    results["mixed_90_10"] = _bench_s("mixed_90_10", 200_000 // scale, setup_mixed)

    # -- bulk data plane (ISSUE 6): one call, many operations ---------------
    batch = 1024

    def setup_bulk_load():
        m = fresh()
        g = m.global_base
        addrs = g + np.arange(batch, dtype=np.int64) * line
        return lambda i: m.load_many(0, addrs, 8, bypass_cache=True, concat=True)

    results["bulk_load_1k"] = _bench_s(
        "bulk_load_1k", 400 // scale, setup_bulk_load, unit=batch)

    def setup_bulk_store():
        m = fresh()
        g = m.global_base
        addrs = g + np.arange(batch, dtype=np.int64) * line
        packed = b"\xa5" * (8 * batch)
        return lambda i: m.store_many(0, addrs, packed, bypass_cache=True, size=8)

    results["bulk_store_1k"] = _bench_s(
        "bulk_store_1k", 400 // scale, setup_bulk_store, unit=batch)

    # gather 64 scattered lines, scatter them to a disjoint destination
    def setup_scatter_gather():
        m = fresh()
        g = m.global_base
        stride = 7 * line  # scattered, non-contiguous sources
        srcs = g + np.arange(64, dtype=np.int64) * stride
        dst0 = g + m.global_size // 2
        dsts = dst0 + np.arange(64, dtype=np.int64) * line

        def body(i):
            rows = m.load_many(0, srcs, line, bypass_cache=True)
            m.store_many(0, dsts, rows, bypass_cache=True)

        return body

    results["scatter_gather_64"] = _bench_s(
        "scatter_gather_64", 2000 // scale, setup_scatter_gather, unit=128)

    def setup_batched_fetch_add():
        m = fresh()
        g = m.global_base
        addrs = g + np.arange(batch, dtype=np.int64) * 8
        return lambda i: m.atomic_fetch_add_many(0, addrs, 1)

    results["batched_fetch_add"] = _bench_s(
        "batched_fetch_add", 200 // scale, setup_batched_fetch_add, unit=batch)

    # cached bulk path (fused hit loop) — supplementary: bounded by bytes
    # materialisation, so expect single-digit speedups, not 10x
    def setup_cached_bulk_load():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):
            m.load(0, g + i * line, 8)
        addrs = [g + (j % hot_lines) * line for j in range(batch)]
        return lambda i: m.load_many(0, addrs, 8)

    results["cached_bulk_load_1k"] = _bench_s(
        "cached_bulk_load_1k", 200 // scale, setup_cached_bulk_load, unit=batch)

    # telemetry-enabled variant: same body as bulk_load_1k; the aggregated
    # one-record-per-batch accounting must keep wall overhead ~1x and the
    # simulated charge identical
    def setup_bulk_load_telemetry():
        from repro import telemetry

        telemetry.reset()
        telemetry.enable()
        m = fresh()
        g = m.global_base
        addrs = g + np.arange(batch, dtype=np.int64) * line

        def body(i):
            m.load_many(0, addrs, 8, bypass_cache=True, concat=True)

        return body

    try:
        results["bulk_load_1k_telemetry"] = _bench_s(
            "bulk_load_1k_telemetry", 400 // scale, setup_bulk_load_telemetry,
            unit=batch)
    finally:
        from repro import telemetry

        telemetry.disable()
        telemetry.reset()

    return results


def render(results: Dict[str, Dict[str, float]],
           baseline: Optional[Dict[str, float]] = None) -> str:
    rows = [f"{'workload':<20} {'ops':>8} {'ops/sec':>12} {'ns/op':>10} "
            f"{'sim ns charged':>16} {'vs baseline':>12}"]
    for name, m in results.items():
        base = (baseline or {}).get(name) or 0.0
        speedup = f"{m['ops_per_sec'] / base:.2f}x" if base else "-"
        rows.append(
            f"{name:<20} {m['ops']:>8} {m['ops_per_sec']:>12,.0f} "
            f"{m['ns_per_op']:>10,.1f} {m['sim_ns_charged']:>16,.0f} {speedup:>12}"
        )
    return "\n".join(rows)


#: (bulk row, single-op row it must beat) — the ISSUE 6 acceptance pairs.
BULK_VS_SINGLE = (
    ("bulk_load_1k", "cached_load_hot"),
    ("bulk_store_1k", "cached_store_hot"),
    ("batched_fetch_add", "atomic_fetch_add"),
)

#: CI smoke gate: each bulk row must run at least this many times faster
#: (per element) than its single-op counterpart.
SMOKE_MIN_BULK_SPEEDUP = 3.0


def bulk_speedups(results: Dict[str, Dict[str, float]]) -> Dict[str, float]:
    """Per-element speedup of each bulk row over its single-op pair."""
    out: Dict[str, float] = {}
    for bulk, single in BULK_VS_SINGLE:
        if bulk in results and single in results:
            base = results[single]["ops_per_sec"]
            if base:
                out[bulk] = round(results[bulk]["ops_per_sec"] / base, 2)
    return out


def telemetry_overhead(results: Dict[str, Dict[str, float]]) -> Optional[dict]:
    """Wall-clock ratio and simulated-ns delta of the telemetry variant."""
    plain = results.get("bulk_load_1k")
    tel = results.get("bulk_load_1k_telemetry")
    if not plain or not tel or not plain["wall_s"]:
        return None
    return {
        "workload": "bulk_load_1k",
        "wall_overhead": round(tel["wall_s"] / plain["wall_s"], 3),
        "sim_ns_delta": round(tel["sim_ns_charged"] - plain["sim_ns_charged"], 3),
    }


def check_gate(results: Dict[str, Dict[str, float]]) -> list:
    """The perf-smoke failures, as printable strings (empty = pass)."""
    failures = []
    speedups = bulk_speedups(results)
    for bulk, single in BULK_VS_SINGLE:
        ratio = speedups.get(bulk)
        if ratio is None:
            failures.append(f"gate: missing row for {bulk} vs {single}")
        elif ratio < SMOKE_MIN_BULK_SPEEDUP:
            failures.append(
                f"gate: {bulk} is only {ratio:.2f}x {single} "
                f"(need >= {SMOKE_MIN_BULK_SPEEDUP:.1f}x)"
            )
    tel = telemetry_overhead(results)
    if tel is not None and tel["sim_ns_delta"] != 0.0:
        failures.append(
            f"gate: telemetry changed simulated time by {tel['sim_ns_delta']} ns "
            "(must be 0)"
        )
    return failures


def build_report(results: Dict[str, Dict[str, float]], mode: str) -> dict:
    baseline = {k: v for k, v in BASELINE_OPS_PER_SEC.items() if v}
    speedup = {
        name: round(m["ops_per_sec"] / baseline[name], 2)
        for name, m in results.items()
        if baseline.get(name)
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "substrate",
        "mode": mode,
        "workloads": results,
        "baseline_ops_per_sec": baseline,
        "speedup_vs_baseline": speedup,
        "bulk_speedup_vs_single": bulk_speedups(results),
        "telemetry_overhead": telemetry_overhead(results),
        "note": (
            "baseline_ops_per_sec was recorded at the seed commit (pre fast-path) "
            "with identical workload bodies; bulk rows use the loop-of-single-ops "
            "equivalent as their baseline.  Compare ratios, not absolute rates, "
            "across machines.  sim_ns_charged must be invariant across data-plane "
            "optimizations (see tests/rack/test_golden_latency.py and "
            "tests/rack/test_bulk_dataplane.py)."
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny op counts (<5 s); for CI sanity, not measurement")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    ap.add_argument("--record-baseline", action="store_true",
                    help="print the measured ops/sec as a BASELINE_OPS_PER_SEC "
                         "dict literal (used once, at the pre-optimization commit)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    results = run(smoke=args.smoke)

    if args.record_baseline:
        print("BASELINE_OPS_PER_SEC = {")
        for name, m in results.items():
            print(f'    "{name}": {m["ops_per_sec"]:.1f},')
        print("}")
        return 0

    report = build_report(results, mode)
    print(render(results, report["baseline_ops_per_sec"]))
    for bulk, ratio in report["bulk_speedup_vs_single"].items():
        print(f"bulk: {bulk} = {ratio:.2f}x its single-op row")
    tel = report["telemetry_overhead"]
    if tel is not None:
        print(f"telemetry: {tel['wall_overhead']:.3f}x wall on {tel['workload']}, "
              f"sim delta {tel['sim_ns_delta']} ns")

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")

    failures = check_gate(results)
    for failure in failures:
        print(failure, file=sys.stderr)
    # the gate is a hard failure in smoke mode (the CI perf lane); full runs
    # report it but still write the JSON so regressions are inspectable
    return 1 if (failures and args.smoke) else 0


if __name__ == "__main__":
    raise SystemExit(main())
