"""Substrate microbenchmark — raw throughput of the rack data plane.

Every layer of the reproduction funnels through
:meth:`repro.rack.RackMachine.load` / :meth:`~repro.rack.RackMachine.store`
/ the atomics, so the *Python* cost of those calls bounds how fast
everything above them can run.  This bench measures that cost directly:
ops/sec and wall-clock ns/op for the canonical access shapes
(cached single-line load/store, bypass bulk transfers, atomics, flush,
and a 90/10 mixed workload), plus the *simulated* nanoseconds each
workload charged — which the data-plane fast path must keep bit-identical.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_substrate.py            # full run
    PYTHONPATH=src python benchmarks/bench_substrate.py --smoke    # <5 s sanity run

A full run writes ``BENCH_substrate.json`` at the repo root (override with
``--json``); smoke runs only write when ``--json`` is given explicitly.
The JSON carries a recorded pre-optimization baseline (``baseline``) so
later PRs have a perf trajectory to regress against; ``speedup_vs_baseline``
is ops/sec relative to that seed measurement.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Callable, Dict, Optional

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.rack import RackConfig, RackMachine

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
DEFAULT_JSON = REPO_ROOT / "BENCH_substrate.json"

SCHEMA_VERSION = 1

#: Pre-optimization throughput, measured at the seed commit (PR 1, before the
#: data-plane fast path landed) with the *same* workload bodies and full-run
#: op counts on the reference container.  Absolute numbers are machine
#: dependent; the ratio after/before on one machine is what matters.
BASELINE_OPS_PER_SEC: Dict[str, float] = {
    "cached_load_hot": 320181.4,
    "cached_store_hot": 303571.6,
    "cached_load_miss": 112859.1,
    "bypass_load_4k": 181695.2,
    "bypass_store_4k": 9907.1,
    "atomic_fetch_add": 193410.2,
    "flush_line": 87567.7,
    "mixed_90_10": 307905.8,
}


def _bench(name: str, ops: int, setup: Callable[[], Callable[[int], None]],
           machine_holder: list, repeats: int = 3) -> Dict[str, float]:
    """Best-of-``repeats`` timing of ``ops`` iterations of ``setup()``'s body.

    Each repeat rebuilds the machine from scratch (``setup`` appends it to
    ``machine_holder``), so the simulated time charged is deterministic and
    identical across repeats; the best wall time damps scheduler noise.
    """
    best_wall = float("inf")
    sim_charged = 0.0
    for _ in range(repeats):
        body = setup()
        machine = machine_holder[-1]
        sim_before = machine.max_time()
        t0 = time.perf_counter()
        for i in range(ops):
            body(i)
        wall = time.perf_counter() - t0
        sim_charged = machine.max_time() - sim_before
        best_wall = min(best_wall, wall)
    wall = best_wall
    return {
        "ops": ops,
        "wall_s": round(wall, 6),
        "ops_per_sec": round(ops / wall, 1) if wall > 0 else float("inf"),
        "ns_per_op": round(wall * 1e9 / ops, 1) if ops else 0.0,
        "sim_ns_charged": round(sim_charged, 3),
    }


def run(smoke: bool = False) -> Dict[str, Dict[str, float]]:
    """Run every workload; returns {workload: metrics}."""
    scale = 1 if not smoke else 20  # smoke = 1/20th the ops, <5 s total
    repeats = 3 if not smoke else 1
    results: Dict[str, Dict[str, float]] = {}
    holder: list = []

    line = 64
    hot_lines = 256  # fits comfortably in the 4096-line cache

    def _bench_s(name, ops, setup):
        return _bench(name, ops, setup, holder, repeats=repeats)

    def fresh(**kw) -> RackMachine:
        if smoke:  # small devices: machine build is dominated by zeroing
            kw.setdefault("global_mem_size", 1 << 22)
            kw.setdefault("local_mem_size", 1 << 20)
        m = RackMachine(RackConfig(n_nodes=2, **kw))
        holder.append(m)
        return m

    # -- cached single-line load, hot set (the fast-path target) -----------
    def setup_load_hot():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):  # warm the cache
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        return lambda i: m.load(0, g + (i & mask) * line, 8)

    results["cached_load_hot"] = _bench_s("cached_load_hot", 200_000 // scale, setup_load_hot)

    # -- cached single-line store, hot set ---------------------------------
    def setup_store_hot():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        payload = b"\xa5" * 8
        return lambda i: m.store(0, g + (i & mask) * line, payload)

    results["cached_store_hot"] = _bench_s("cached_store_hot", 200_000 // scale, setup_store_hot)

    # -- cached load with misses + evictions (streaming) -------------------
    def setup_load_miss():
        m = fresh()
        g = m.global_base
        n_lines = m.global_size // line
        return lambda i: m.load(0, g + (i % n_lines) * line, line)

    results["cached_load_miss"] = _bench_s("cached_load_miss", 40_000 // scale, setup_load_miss)

    # -- bypass (non-temporal) bulk transfers ------------------------------
    def setup_bypass_load():
        m = fresh()
        g = m.global_base
        n_slots = m.global_size // 4096
        return lambda i: m.load(0, g + (i % n_slots) * 4096, 4096, bypass_cache=True)

    results["bypass_load_4k"] = _bench_s("bypass_load_4k", 40_000 // scale, setup_bypass_load)

    def setup_bypass_store():
        m = fresh()
        g = m.global_base
        n_slots = m.global_size // 4096
        payload = b"\x5a" * 4096
        return lambda i: m.store(0, g + (i % n_slots) * 4096, payload, bypass_cache=True)

    results["bypass_store_4k"] = _bench_s("bypass_store_4k", 40_000 // scale, setup_bypass_store)

    # -- rack-serialised atomics -------------------------------------------
    def setup_atomics():
        m = fresh()
        g = m.global_base
        return lambda i: m.atomic_fetch_add(0, g, 1)

    results["atomic_fetch_add"] = _bench_s("atomic_fetch_add", 60_000 // scale, setup_atomics)

    # -- store + flush round trip ------------------------------------------
    def setup_flush():
        m = fresh()
        g = m.global_base
        payload = b"\x3c" * 8
        mask = hot_lines - 1

        def body(i):
            addr = g + (i & mask) * line
            m.store(0, addr, payload)
            m.flush(0, addr, 8)

        return body

    results["flush_line"] = _bench_s("flush_line", 40_000 // scale, setup_flush)

    # -- 90/10 read/write mix over a hot set -------------------------------
    def setup_mixed():
        m = fresh()
        g = m.global_base
        for i in range(hot_lines):
            m.load(0, g + i * line, 8)
        mask = hot_lines - 1
        payload = b"\x7e" * 8

        def body(i):
            addr = g + (i & mask) * line
            if i % 10 == 9:
                m.store(0, addr, payload)
            else:
                m.load(0, addr, 8)

        return body

    results["mixed_90_10"] = _bench_s("mixed_90_10", 200_000 // scale, setup_mixed)

    return results


def render(results: Dict[str, Dict[str, float]],
           baseline: Optional[Dict[str, float]] = None) -> str:
    rows = [f"{'workload':<20} {'ops':>8} {'ops/sec':>12} {'ns/op':>10} "
            f"{'sim ns charged':>16} {'vs baseline':>12}"]
    for name, m in results.items():
        base = (baseline or {}).get(name) or 0.0
        speedup = f"{m['ops_per_sec'] / base:.2f}x" if base else "-"
        rows.append(
            f"{name:<20} {m['ops']:>8} {m['ops_per_sec']:>12,.0f} "
            f"{m['ns_per_op']:>10,.1f} {m['sim_ns_charged']:>16,.0f} {speedup:>12}"
        )
    return "\n".join(rows)


def build_report(results: Dict[str, Dict[str, float]], mode: str) -> dict:
    baseline = {k: v for k, v in BASELINE_OPS_PER_SEC.items() if v}
    speedup = {
        name: round(m["ops_per_sec"] / baseline[name], 2)
        for name, m in results.items()
        if baseline.get(name)
    }
    return {
        "schema_version": SCHEMA_VERSION,
        "bench": "substrate",
        "mode": mode,
        "workloads": results,
        "baseline_ops_per_sec": baseline,
        "speedup_vs_baseline": speedup,
        "note": (
            "baseline_ops_per_sec was recorded at the seed commit (pre fast-path) "
            "with identical workload bodies; compare ratios, not absolute rates, "
            "across machines.  sim_ns_charged must be invariant across data-plane "
            "optimizations (see tests/rack/test_golden_latency.py)."
        ),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny op counts (<5 s); for CI sanity, not measurement")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help=f"output path (default {DEFAULT_JSON.name} at repo root; "
                         "smoke runs skip writing unless set)")
    ap.add_argument("--record-baseline", action="store_true",
                    help="print the measured ops/sec as a BASELINE_OPS_PER_SEC "
                         "dict literal (used once, at the pre-optimization commit)")
    args = ap.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    results = run(smoke=args.smoke)

    if args.record_baseline:
        print("BASELINE_OPS_PER_SEC = {")
        for name, m in results.items():
            print(f'    "{name}": {m["ops_per_sec"]:.1f},')
        print("}")
        return 0

    report = build_report(results, mode)
    print(render(results, report["baseline_ops_per_sec"]))

    out = args.json
    if out is None and not args.smoke:
        out = DEFAULT_JSON
    if out is not None:
        out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"\nwrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
