"""Health-engine overhead bench — observation must be free in simulated
time and cheap in host time.

The health engine's contract (DESIGN.md §9): ticking the windowed
aggregator + SLO engine + anomaly detectors every step adds **zero
simulated nanoseconds** (golden latencies are bit-identical with health
attached) and bounded host overhead (budget: <= 1.1x wall versus the
same run without a health engine).  This bench runs the identical
fault-free seeded workload twice — health detached, then attached at
the deployed cadence (tick every step, window spanning several steps,
exactly how the chaos campaign runner drives it) — and compares both
wall time and every node's final simulated clock.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_health.py            # full run
    PYTHONPATH=src python benchmarks/bench_health.py --smoke    # <5 s sanity run

Writes ``BENCH_health.json`` at the repo root via ``emit_bench_metrics``
(override with ``--json``).  Exits non-zero if the simulated-time delta
is not exactly zero — that is a correctness bug, not a perf regression.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Dict, Tuple

if __name__ == "__main__" and __package__ is None:  # allow running from a checkout
    sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro import telemetry
from repro.bench import build_rig
from repro.bench.harness import emit_bench_metrics

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

# Deployed cadence: tick every step, windows span several steps.  One
# fs.read step costs ~4.6us simulated, so a 32.8us window closes a frame
# roughly every 7 steps — the shape the chaos runner drives in practice.
_WINDOW_NS = 32768.0
_QUANTUM_NS = 256.0  # per-step scheduler nudge so idle nodes still progress
_WALL_BUDGET = 1.1


def _run_workload(attach_health: bool, steps: int) -> Tuple[float, Dict[int, float]]:
    """One seeded fault-free run; returns (wall seconds, final clocks)."""
    telemetry.disable()
    telemetry.reset()
    telemetry.enable()
    rig = build_rig()
    kernel = rig.kernel
    health = None
    if attach_health:
        health = kernel.attach_health(window_ns=_WINDOW_NS)
    fd = kernel.fs.open(rig.c0, "/bench-data", create=True)
    kernel.fs.write(rig.c0, fd, 0, b"health-bench " * 315)

    t0 = time.perf_counter()
    for step in range(steps):
        kernel.fs.read(rig.c0, fd, (step % 4) * 1024, 1024)
        rig.c0.advance(_QUANTUM_NS)
        if health is not None:
            health.tick()
    wall = time.perf_counter() - t0

    clocks = {n: rig.machine.now(n) for n in rig.machine.nodes}
    if health is not None:
        assert health.windows.frames_closed > 0, "bench never closed a window"
    telemetry.disable()
    telemetry.reset()
    return wall, clocks


def run(smoke: bool = False) -> Dict[str, object]:
    steps = 150 if smoke else 2000
    repeats = 1 if smoke else 3
    wall_off = min(_run_workload(False, steps)[0] for _ in range(repeats))
    wall_on = min(_run_workload(True, steps)[0] for _ in range(repeats))
    _, clocks_off = _run_workload(False, steps)
    _, clocks_on = _run_workload(True, steps)

    sim_delta = {
        n: clocks_on[n] - clocks_off[n] for n in sorted(clocks_off)
    }
    overhead = wall_on / wall_off if wall_off else float("inf")
    return {
        "steps": steps,
        "window_ns": _WINDOW_NS,
        "wall_off_s": round(wall_off, 4),
        "wall_on_s": round(wall_on, 4),
        "overhead_ratio": round(overhead, 3),
        "wall_budget": _WALL_BUDGET,
        "within_wall_budget": overhead <= _WALL_BUDGET,
        "simulated_ns_delta": sim_delta,
        "simulated_time_identical": all(d == 0.0 for d in sim_delta.values()),
    }


def render(results: Dict[str, object]) -> str:
    lines = [
        f"steps={results['steps']} window={results['window_ns']:.0f}ns",
        f"wall  off={results['wall_off_s']:.4f}s on={results['wall_on_s']:.4f}s "
        f"overhead={results['overhead_ratio']:.2f}x (budget {results['wall_budget']:.1f}x)",
        "simulated delta per node: "
        + " ".join(f"node{n}={d:+.0f}ns" for n, d in results["simulated_ns_delta"].items()),
    ]
    return "\n".join(lines)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--smoke", action="store_true",
                    help="tiny step count (<5 s); for CI sanity, not measurement")
    ap.add_argument("--json", type=pathlib.Path, default=None,
                    help="output path (default BENCH_health.json at repo root)")
    args = ap.parse_args(argv)

    results = run(smoke=args.smoke)
    print(render(results))

    out = emit_bench_metrics(
        "health",
        {"mode": "smoke" if args.smoke else "full", **results},
        path=args.json,
    )
    print(f"wrote {out}")

    if not results["simulated_time_identical"]:
        print("FAIL: health engine changed simulated time", file=sys.stderr)
        return 1
    if not results["within_wall_budget"]:
        # wall time on shared CI boxes is noisy; report loudly, fail softly
        print(
            f"WARN: wall overhead {results['overhead_ratio']:.2f}x exceeds "
            f"{results['wall_budget']:.1f}x budget",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
