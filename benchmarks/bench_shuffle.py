"""E10 — §3.4 customer scenario: big-data shuffle through FlacFS.

The paper motivates memory file systems with "temporary data storage
and shuffle in big data analytics".  A MapReduce shuffle runs two ways:
spills written once into FlacFS and read in place by reducers on any
node, versus the conventional network shuffle that moves every byte
over TCP with serialisation.  The structural claims:

* FlacOS moves **zero** bytes over any wire;
* the reduce (communication) phase — the part that scales with data —
  is several times faster;
* the map phase pays a premium for writing into shared memory, which
  the communication savings repay.
"""

import pytest

from repro.apps.shuffle import run_shuffle_job
from repro.bench import Table, build_rig
from repro.workloads import KeyGenerator, ValueGenerator

N_MAPPERS = 4
N_PARTITIONS = 4
VALUE_SIZES = (128, 512, 2048)
RECORDS_PER_MAPPER = 200


def _records(value_size):
    keys = KeyGenerator(1 << 20, seed=11)
    values = ValueGenerator(value_size, seed=11)
    return {
        m: [
            (
                keys.key(m * RECORDS_PER_MAPPER + i),
                values.value_for(keys.key(m * RECORDS_PER_MAPPER + i)),
            )
            for i in range(RECORDS_PER_MAPPER)
        ]
        for m in range(N_MAPPERS)
    }


def run_pair(value_size):
    records = _records(value_size)
    rig = build_rig()
    out_f, rep_f = run_shuffle_job(
        "flacos", {0: rig.c0, 1: rig.c1}, {0: rig.c1, 1: rig.c0},
        records, N_PARTITIONS, fs=rig.kernel.fs,
    )
    rig2 = build_rig()
    out_n, rep_n = run_shuffle_job(
        "network", {0: rig2.c0, 1: rig2.c1}, {0: rig2.c1, 1: rig2.c0},
        records, N_PARTITIONS,
    )
    assert out_f == out_n, "strategies disagree on shuffle output"
    return rep_f, rep_n


def run_all():
    return {size: run_pair(size) for size in VALUE_SIZES}


@pytest.mark.benchmark(group="shuffle")
def test_shuffle_strategies(benchmark, emit):
    results = benchmark.pedantic(run_all, rounds=1, iterations=1)
    table = Table(
        "E10 — MapReduce shuffle: FlacFS vs TCP (4 mappers, 4 partitions, 800 records)",
        ["value size", "strategy", "map (us)", "reduce (us)", "total (us)", "wire bytes"],
    )
    notes = []
    for size, (rep_f, rep_n) in results.items():
        for rep in (rep_f, rep_n):
            table.add_row(
                f"{size} B", rep.strategy, rep.map_makespan_ns / 1000,
                rep.reduce_makespan_ns / 1000, rep.total_ns / 1000, rep.bytes_over_wire,
            )
        notes.append(
            f"{size} B values: reduce phase {rep_n.reduce_makespan_ns / rep_f.reduce_makespan_ns:.1f}x "
            f"faster on FlacOS; end-to-end {rep_n.total_ns / rep_f.total_ns:.2f}x"
        )
    emit("E10_shuffle", table.render() + "\n" + "\n".join(notes))
    for size, (rep_f, rep_n) in results.items():
        assert rep_f.bytes_over_wire == 0
        assert rep_n.bytes_over_wire > 0
        assert rep_f.reduce_makespan_ns < rep_n.reduce_makespan_ns
    # communication savings must grow with the data size
    gains = [
        rep_n.reduce_makespan_ns / rep_f.reduce_makespan_ns
        for rep_f, rep_n in results.values()
    ]
    assert gains[-1] > gains[0]
    # and by the largest size the whole job wins end-to-end
    rep_f, rep_n = results[VALUE_SIZES[-1]]
    assert rep_f.total_ns < rep_n.total_ns
