"""E9 — §3.2 ablation: allocator, hotness layout, relocation/tiering.

1. shared-heap alloc/free cost from a growing number of nodes (the
   lock-free free lists keep it flat-ish);
2. hotness-aware packing: lines touched by a hot-object trace, packed
   vs address-ordered (the [26, 40] optimisation);
3. tiering: access latency of a hot object before/after promotion from
   global to node-local memory.
"""

import pytest

from repro.bench import Table, build_rig
from repro.flacdk.alloc import (
    HandleTable,
    HotColdPacker,
    MemoryTierer,
    ObjectInfo,
    Relocator,
    SharedHeap,
    address_order_plan,
    expected_lines_touched,
)

ALLOCS = 100


def run_alloc_scaling():
    costs = {}
    for n_nodes in (1, 2, 4, 8):
        rig = build_rig(
            n_nodes=max(2, n_nodes),
            topology="single_switch" if n_nodes > 2 else "dual_direct",
        )
        ctxs = [rig.machine.context(i) for i in range(n_nodes)]
        heap = SharedHeap(rig.kernel.arena.take(1 << 22), 1 << 22).format(ctxs[0])
        rig.align()
        t0 = max(c.now() for c in ctxs)
        addrs = []
        for i in range(ALLOCS):
            ctx = ctxs[i % n_nodes]
            addrs.append((ctx, heap.alloc(ctx, 64 + (i % 5) * 100)))
        for ctx, addr in addrs:
            heap.free(ctx, addr)
        costs[n_nodes] = (max(c.now() for c in ctxs) - t0) / (2 * ALLOCS)
    return costs


def run_packing():
    objects = [
        ObjectInfo(i, size=16, hotness=10.0 if i % 7 == 0 else 0.0) for i in range(70)
    ]
    hot_trace = [i for i in range(70) if i % 7 == 0] * 5
    packer = HotColdPacker()
    packed = packer.pack(objects)
    naive = address_order_plan(objects)
    return (
        expected_lines_touched(packed, hot_trace, objects),
        expected_lines_touched(naive, hot_trace, objects),
    )


def run_tiering():
    rig = build_rig()
    arena = rig.kernel.arena
    cold_heap = SharedHeap(arena.take(1 << 21), 1 << 21).format(rig.c0)
    # "hot heap" carved from node 0's local memory
    local_base = rig.machine.local_base(0)
    hot_heap = SharedHeap(local_base, 1 << 21).format(rig.c0)
    table = HandleTable(arena.take(8 * 16, align=8), 15).format(rig.c0)
    tierer = MemoryTierer(Relocator(table), hot_heap, cold_heap, hot_threshold=1.0)

    obj = cold_heap.alloc(rig.c0, 256)
    rig.c0.store(obj, b"H" * 256, bypass_cache=True)
    handle = table.create(rig.c0, obj)
    tierer.track(handle, 256, hot=False)

    def access_cost():
        rig.c0.invalidate(table.resolve(rig.c0, handle), 256)
        t0 = rig.c0.now()
        addr = table.resolve(rig.c0, handle)
        rig.c0.load(addr, 256)
        return rig.c0.now() - t0

    before_ns = access_cost()
    for _ in range(5):
        tierer.record_access(handle)
    moves = tierer.rebalance(rig.c0)
    after_ns = access_cost()
    return before_ns, after_ns, moves


@pytest.mark.benchmark(group="allocator")
def test_alloc_scaling(benchmark, emit):
    costs = benchmark.pedantic(run_alloc_scaling, rounds=1, iterations=1)
    table = Table("E9a — shared heap alloc+free wall cost (us/op)", ["nodes", "cost (us)"])
    for n, ns in costs.items():
        table.add_row(n, ns / 1000)
    emit("E9a_alloc_scaling", table.render())
    # lock-free heap: growing the node count must not blow up per-op cost
    assert costs[8] < costs[1] * 3


@pytest.mark.benchmark(group="allocator")
def test_hot_cold_packing(benchmark, emit):
    packed_lines, naive_lines = benchmark.pedantic(run_packing, rounds=1, iterations=1)
    emit(
        "E9b_packing",
        f"hot trace touches {packed_lines} lines packed vs {naive_lines} address-ordered "
        f"({naive_lines / packed_lines:.1f}x fewer global-memory pulls)",
    )
    assert packed_lines * 2 <= naive_lines


@pytest.mark.benchmark(group="allocator")
def test_tiering_promotion(benchmark, emit):
    before_ns, after_ns, moves = benchmark.pedantic(run_tiering, rounds=1, iterations=1)
    emit(
        "E9c_tiering",
        f"256 B hot-object access: {before_ns / 1000:.2f} us in global memory -> "
        f"{after_ns / 1000:.2f} us after promotion to local DRAM "
        f"({before_ns / after_ns:.1f}x; moves: {moves})",
    )
    assert moves["promoted"] == 1
    assert after_ns < before_ns


@pytest.mark.benchmark(group="allocator")
def test_fragmentation_reuse(benchmark, emit):
    """Free lists bound fragmentation: churn reuses blocks, the bump
    cursor stays put."""
    rig = benchmark.pedantic(build_rig, rounds=1, iterations=1)
    heap = SharedHeap(rig.kernel.arena.take(1 << 21), 1 << 21).format(rig.c0)
    addrs = [heap.alloc(rig.c0, 200) for _ in range(50)]
    for addr in addrs:
        heap.free(rig.c0, addr)
    bumped_after_first_wave = heap.bytes_bumped(rig.c0)
    for _ in range(3):
        addrs = [heap.alloc(rig.c0, 200) for _ in range(50)]
        for addr in addrs:
            heap.free(rig.c0, addr)
    emit(
        "E9d_fragmentation",
        f"150 further allocations reused freed blocks: bump cursor stayed at "
        f"{heap.bytes_bumped(rig.c0)} B (was {bumped_after_first_wave} B after wave 1)",
    )
    assert heap.bytes_bumped(rig.c0) == bumped_after_first_wave
