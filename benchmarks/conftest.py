"""Shared infrastructure for the benchmark suite.

Every bench renders its table(s) with the harness and *emits* them:
printed to stdout (visible with ``pytest -s``) and written under
``benchmarks/results/`` so a run leaves the regenerated rows on disk.
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def emit():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
